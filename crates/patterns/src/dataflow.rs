//! Pattern instances (Table I) and the data-flow diagram (Fig. 4).
//!
//! A [`DataflowGraph`] is built for one RK substep. Nodes are pattern
//! instances in the textual order of Algorithm 1; a dependency edge runs
//! from the **last writer** of a variable to each subsequent reader (and to
//! the next writer, so write-after-write/read hazards are ordered too).
//! Variables not written within the substep — the prognostic state and the
//! previous substep's diagnostics — are available at graph entry.
//!
//! The graph exposes exactly the concurrency the paper exploits: e.g. in an
//! intermediate substep `accumulative_update` depends only on the tendencies,
//! so it can run on the CPU while `compute_solve_diagnostics` runs on the
//! accelerator (Fig. 4 (b)).

use crate::pattern::{MeshLocation, PatternClass, Variable};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The six kernels of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Kernel {
    /// Thickness and momentum tendencies.
    ComputeTend,
    /// Boundary-edge tendency masking.
    EnforceBoundaryEdge,
    /// Provisional RK-substep state.
    ComputeNextSubstepState,
    /// All diagnostic fields.
    ComputeSolveDiagnostics,
    /// RK quadrature accumulation.
    AccumulativeUpdate,
    /// Cell-center velocity reconstruction.
    MpasReconstruct,
}

/// Which flavor of RK substep a graph describes (Algorithm 1 branches on
/// `RK_step < 4`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RkPhase {
    /// Substeps 1–3: tend → boundary → next-substep state → diagnostics on
    /// the provisional state, with accumulation alongside.
    Intermediate,
    /// Substep 4: tend → boundary → final accumulation → diagnostics on the
    /// new state → velocity reconstruction.
    Final,
}

/// Node index within a [`DataflowGraph`].
pub type NodeId = usize;

/// One use of a stencil pattern: a row of the paper's Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternInstance {
    /// Table-I label, e.g. `"A1"`, `"H2"`, `"X4"`.
    pub name: &'static str,
    /// Stencil class (Fig. 3 letter).
    pub class: PatternClass,
    /// The Algorithm-1 kernel this instance belongs to.
    pub kernel: Kernel,
    /// Variables read.
    pub inputs: Vec<Variable>,
    /// Variables written.
    pub outputs: Vec<Variable>,
}

/// Mesh sizes feeding the per-node work model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeshCounts {
    /// Number of cells (mass points).
    pub n_cells: f64,
    /// Number of edges (velocity points).
    pub n_edges: f64,
    /// Number of vertices (vorticity points).
    pub n_vertices: f64,
}

impl MeshCounts {
    /// Counts for a quasi-uniform icosahedral mesh with `n_cells` cells
    /// (edges ~3x, vertices ~2x by Euler's formula).
    pub fn icosahedral(n_cells: usize) -> Self {
        let c = n_cells as f64;
        MeshCounts {
            n_cells: c,
            n_edges: 3.0 * (c - 2.0),
            n_vertices: 2.0 * (c - 2.0),
        }
    }

    fn at(&self, loc: MeshLocation) -> f64 {
        match loc {
            MeshLocation::Cell => self.n_cells,
            MeshLocation::Edge => self.n_edges,
            MeshLocation::Vertex => self.n_vertices,
        }
    }
}

/// Estimated floating-point work and memory traffic of one pattern instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Work {
    /// Floating-point operations.
    pub flops: f64,
    /// Memory traffic in bytes (cache-line inflated).
    pub bytes: f64,
}

impl PatternInstance {
    /// Number of output points (total size of the written fields).
    pub fn output_points(&self, mc: &MeshCounts) -> f64 {
        self.outputs.iter().map(|v| mc.at(v.location())).sum()
    }

    /// Work model: ~2 flops (mul+add) per stencil point per input variable,
    /// plus per-point overhead; bytes = gathered inputs (value + 4-byte
    /// index) plus the streamed output, inflated by a cache-line
    /// granularity factor (irregular gathers fetch whole 64-byte lines and
    /// write-allocate stores, so each useful byte costs ≈2 memory-system
    /// bytes — calibrated against the paper's absolute Fig. 7 times).
    pub fn work(&self, mc: &MeshCounts) -> Work {
        const TRAFFIC_FACTOR: f64 = 2.1;
        let out = self.output_points(&MeshCounts { ..*mc });
        let width = self.class.stencil_width();
        let nin = self.inputs.len() as f64;
        let flops = out * (2.0 * width * nin.max(1.0) + 4.0);
        let bytes = TRAFFIC_FACTOR * out * (8.0 + width * (8.0 * nin.max(1.0) + 4.0));
        Work { flops, bytes }
    }
}

/// Shorthand for building instances.
fn inst(
    name: &'static str,
    class: PatternClass,
    kernel: Kernel,
    inputs: &[Variable],
    outputs: &[Variable],
) -> PatternInstance {
    PatternInstance {
        name,
        class,
        kernel,
        inputs: inputs.to_vec(),
        outputs: outputs.to_vec(),
    }
}

/// The full Table I: every pattern instance of the shallow-water model, in
/// Algorithm-1 execution order for an **intermediate** substep.
pub fn table_i() -> Vec<PatternInstance> {
    use Kernel::*;
    use PatternClass as P;
    use Variable::*;
    vec![
        // -- compute_tend (reads the previous substep's diagnostics)
        inst("A1", P::A, ComputeTend, &[ProvisU, HEdge], &[TendH]),
        inst(
            "B1",
            P::B,
            ComputeTend,
            &[PvEdge, ProvisU, HEdge, Ke, ProvisH],
            &[TendU],
        ),
        inst(
            "C1",
            P::C,
            ComputeTend,
            &[Divergence, Vorticity, TendU],
            &[TendU],
        ),
        // -- enforce_boundary_edge
        inst("X1", P::Local, EnforceBoundaryEdge, &[TendU], &[TendU]),
        // -- compute_next_substep_state
        inst(
            "X2",
            P::Local,
            ComputeNextSubstepState,
            &[H, TendH],
            &[ProvisH],
        ),
        inst(
            "X3",
            P::Local,
            ComputeNextSubstepState,
            &[U, TendU],
            &[ProvisU],
        ),
        // -- accumulative_update (depends only on tendencies!)
        inst("X4", P::Local, AccumulativeUpdate, &[H, TendH], &[H]),
        inst("X5", P::Local, AccumulativeUpdate, &[U, TendU], &[U]),
        // -- compute_solve_diagnostics (on the provisional state)
        inst(
            "D1",
            P::D,
            ComputeSolveDiagnostics,
            &[ProvisH],
            &[D2fdx2Cell1],
        ),
        inst(
            "D2",
            P::D,
            ComputeSolveDiagnostics,
            &[ProvisH],
            &[D2fdx2Cell2],
        ),
        inst(
            "H2",
            P::H,
            ComputeSolveDiagnostics,
            &[ProvisH, D2fdx2Cell1, D2fdx2Cell2],
            &[HEdge],
        ),
        inst(
            "C2",
            P::C,
            ComputeSolveDiagnostics,
            &[ProvisU],
            &[Vorticity],
        ),
        inst("A2", P::A, ComputeSolveDiagnostics, &[ProvisU], &[Ke]),
        inst(
            "B2",
            P::B,
            ComputeSolveDiagnostics,
            &[ProvisU],
            &[Divergence],
        ),
        inst("H1", P::H, ComputeSolveDiagnostics, &[ProvisU], &[V]),
        // Cell vorticity is kite-interpolated from the vertex vorticity;
        // the paper's Table I lists `provis_u` as the input because the
        // vertex vorticity is itself diagnosed from it — we surface the
        // intermediate dependency explicitly.
        inst(
            "A3",
            P::A,
            ComputeSolveDiagnostics,
            &[Vorticity],
            &[VorticityCell],
        ),
        inst(
            "E",
            P::E,
            ComputeSolveDiagnostics,
            &[ProvisH, Vorticity],
            &[PvVertex],
        ),
        inst("F", P::F, ComputeSolveDiagnostics, &[PvVertex], &[PvCell]),
        inst(
            "G",
            P::G,
            ComputeSolveDiagnostics,
            &[PvVertex, PvCell, ProvisU, V],
            &[PvEdge],
        ),
        // -- mpas_reconstruct (final substep only)
        inst("A4", P::A, MpasReconstruct, &[U], &[URecX, URecY, URecZ]),
        inst(
            "X6",
            P::Local,
            MpasReconstruct,
            &[URecX, URecY, URecZ],
            &[URecZonal, URecMeridional],
        ),
    ]
}

/// A data-flow diagram for one RK substep.
#[derive(Debug, Clone)]
pub struct DataflowGraph {
    /// Which substep flavor this graph describes.
    pub phase: RkPhase,
    /// Pattern instances in Algorithm-1 program order.
    pub nodes: Vec<PatternInstance>,
    /// `preds[n]` = nodes that must complete before `n` starts.
    pub preds: Vec<Vec<NodeId>>,
    /// `succs[n]` = nodes unlocked by `n` (transpose of `preds`).
    pub succs: Vec<Vec<NodeId>>,
}

impl DataflowGraph {
    /// Build the diagram for one RK substep of Algorithm 1.
    pub fn for_substep(phase: RkPhase) -> Self {
        let all = table_i();
        let pick = |names: &[&str]| -> Vec<PatternInstance> {
            names
                .iter()
                .map(|n| {
                    all.iter()
                        .find(|p| p.name == *n)
                        .cloned()
                        .unwrap_or_else(|| panic!("unknown pattern instance {n}"))
                })
                .collect()
        };
        let nodes = match phase {
            RkPhase::Intermediate => pick(&[
                "A1", "B1", "C1", "X1", "X2", "X3", "X4", "X5", "D1", "D2", "H2", "C2", "A2", "B2",
                "H1", "A3", "E", "F", "G",
            ]),
            RkPhase::Final => {
                let mut nodes = pick(&[
                    "A1", "B1", "C1", "X1", "X4", "X5", "D1", "D2", "H2", "C2", "A2", "B2", "H1",
                    "A3", "E", "F", "G", "A4", "X6",
                ]);
                // In the final substep the diagnostics (and reconstruction)
                // run on the freshly accumulated state, not the provisional
                // one: substitute ProvisH -> H, ProvisU -> U in the
                // diagnostic suite's inputs.
                for n in nodes.iter_mut() {
                    if matches!(n.kernel, Kernel::ComputeSolveDiagnostics) {
                        for v in n.inputs.iter_mut() {
                            *v = match *v {
                                Variable::ProvisH => Variable::H,
                                Variable::ProvisU => Variable::U,
                                other => other,
                            };
                        }
                    }
                }
                nodes
            }
        };
        Self::from_nodes(phase, nodes)
    }

    /// Wire dependencies by last-writer analysis over an ordered node list.
    pub fn from_nodes(phase: RkPhase, nodes: Vec<PatternInstance>) -> Self {
        let mut last_writer: HashMap<Variable, NodeId> = HashMap::new();
        let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); nodes.len()];
        for (id, node) in nodes.iter().enumerate() {
            let mut p: Vec<NodeId> = Vec::new();
            for &v in &node.inputs {
                if let Some(&w) = last_writer.get(&v) {
                    p.push(w);
                }
            }
            // Write-after-write ordering keeps re-writers sequenced.
            for &v in &node.outputs {
                if let Some(&w) = last_writer.get(&v) {
                    p.push(w);
                }
            }
            p.sort_unstable();
            p.dedup();
            p.retain(|&w| w != id);
            preds[id] = p;
            for &v in &node.outputs {
                last_writer.insert(v, id);
            }
        }
        let mut succs: Vec<Vec<NodeId>> = vec![Vec::new(); nodes.len()];
        for (id, ps) in preds.iter().enumerate() {
            for &p in ps {
                succs[p].push(id);
            }
        }
        DataflowGraph {
            phase,
            nodes,
            preds,
            succs,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Find a node by Table-I name.
    pub fn node(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// Topological levels: level `k` contains nodes whose longest dependency
    /// chain has length `k`. Nodes within a level are mutually independent
    /// and may run concurrently. Panics on cycles (construction forbids
    /// them, since edges only point forward in program order).
    pub fn topo_levels(&self) -> Vec<Vec<NodeId>> {
        let mut level = vec![0usize; self.len()];
        for id in 0..self.len() {
            for &p in &self.preds[id] {
                debug_assert!(p < id, "dependency must point backward");
                level[id] = level[id].max(level[p] + 1);
            }
        }
        let max = level.iter().copied().max().unwrap_or(0);
        let mut out = vec![Vec::new(); max + 1];
        for (id, &l) in level.iter().enumerate() {
            out[l].push(id);
        }
        out
    }

    /// Critical-path length under a per-node cost function, plus the total
    /// (serial) cost. Their ratio bounds the achievable parallel speedup.
    pub fn critical_path<Fc: Fn(&PatternInstance) -> f64>(&self, cost: Fc) -> (f64, f64) {
        let mut finish = vec![0.0f64; self.len()];
        let mut total = 0.0;
        for id in 0..self.len() {
            let start = self.preds[id]
                .iter()
                .map(|&p| finish[p])
                .fold(0.0f64, f64::max);
            let c = cost(&self.nodes[id]);
            finish[id] = start + c;
            total += c;
        }
        let cp = finish.iter().copied().fold(0.0f64, f64::max);
        (cp, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Variable::*;

    #[test]
    fn table_i_has_21_instances_with_expected_pattern_usage() {
        let t = table_i();
        assert_eq!(t.len(), 21);
        let count = |c: PatternClass| t.iter().filter(|p| p.class == c).count();
        // DESIGN.md §3: A is used 4 times, B twice, C twice, D twice,
        // E/F/G once, H twice, and six local boxes X1..X6.
        assert_eq!(count(PatternClass::A), 4);
        assert_eq!(count(PatternClass::B), 2);
        assert_eq!(count(PatternClass::C), 2);
        assert_eq!(count(PatternClass::D), 2);
        assert_eq!(count(PatternClass::E), 1);
        assert_eq!(count(PatternClass::F), 1);
        assert_eq!(count(PatternClass::G), 1);
        assert_eq!(count(PatternClass::H), 2);
        assert_eq!(count(PatternClass::Local), 6);
    }

    #[test]
    fn names_are_unique() {
        let t = table_i();
        let mut seen = std::collections::HashSet::new();
        for p in &t {
            assert!(seen.insert(p.name), "{} duplicated", p.name);
        }
    }

    #[test]
    fn intermediate_graph_kernel_ordering_matches_algorithm_1() {
        let g = DataflowGraph::for_substep(RkPhase::Intermediate);
        // compute_tend -> enforce_boundary_edge -> next_substep -> diag.
        let b1 = g.node("B1").unwrap();
        let c1 = g.node("C1").unwrap();
        let x1 = g.node("X1").unwrap();
        let x3 = g.node("X3").unwrap();
        let a2 = g.node("A2").unwrap();
        assert!(g.preds[c1].contains(&b1), "C1 must follow B1 (tend_u RMW)");
        assert!(g.preds[x1].contains(&c1), "X1 must follow C1");
        assert!(g.preds[x3].contains(&x1), "X3 must follow X1");
        assert!(g.preds[a2].contains(&x3), "diag on provis follows X3");
    }

    #[test]
    fn accumulate_is_independent_of_diagnostics() {
        // The concurrency the pattern-driven design exploits (Fig. 4(b)):
        // X4/X5 depend only on tendencies, not on any diagnostics node.
        let g = DataflowGraph::for_substep(RkPhase::Intermediate);
        let x4 = g.node("X4").unwrap();
        let x5 = g.node("X5").unwrap();
        for diag in [
            "D1", "D2", "H2", "C2", "A2", "B2", "A3", "E", "F", "H1", "G",
        ] {
            let d = g.node(diag).unwrap();
            assert!(!g.preds[x4].contains(&d));
            assert!(!g.preds[x5].contains(&d));
            // And the diagnostics do not wait on the accumulation either.
            assert!(!g.preds[d].contains(&x4));
            assert!(!g.preds[d].contains(&x5));
        }
    }

    #[test]
    fn diagnostic_chain_d_to_h2_to_next_substep() {
        let g = DataflowGraph::for_substep(RkPhase::Intermediate);
        let h2 = g.node("H2").unwrap();
        let d1 = g.node("D1").unwrap();
        let d2 = g.node("D2").unwrap();
        assert!(g.preds[h2].contains(&d1));
        assert!(g.preds[h2].contains(&d2));
        let gph = g.node("G").unwrap();
        for dep in ["E", "F", "H1"] {
            assert!(g.preds[gph].contains(&g.node(dep).unwrap()));
        }
    }

    #[test]
    fn final_graph_diagnostics_read_new_state() {
        let g = DataflowGraph::for_substep(RkPhase::Final);
        let a2 = g.node("A2").unwrap();
        assert!(g.nodes[a2].inputs.contains(&U));
        assert!(!g.nodes[a2].inputs.contains(&ProvisU));
        // Diagnostics therefore wait on the final accumulation X5.
        let x5 = g.node("X5").unwrap();
        assert!(g.preds[a2].contains(&x5));
        // Reconstruction is present and reads U.
        let a4 = g.node("A4").unwrap();
        assert!(g.nodes[a4].inputs.contains(&U));
        let x6 = g.node("X6").unwrap();
        assert!(g.preds[x6].contains(&a4));
    }

    #[test]
    fn intermediate_graph_has_no_reconstruct() {
        let g = DataflowGraph::for_substep(RkPhase::Intermediate);
        assert!(g.node("A4").is_none());
        assert!(g.node("X6").is_none());
        assert_eq!(g.len(), 19);
    }

    #[test]
    fn topo_levels_cover_all_nodes_exactly_once() {
        for phase in [RkPhase::Intermediate, RkPhase::Final] {
            let g = DataflowGraph::for_substep(phase);
            let levels = g.topo_levels();
            let mut seen = vec![false; g.len()];
            for level in &levels {
                for &n in level {
                    assert!(!seen[n]);
                    seen[n] = true;
                }
            }
            assert!(seen.iter().all(|&b| b));
            // Every dependency crosses levels forward.
            let mut level_of = vec![0; g.len()];
            for (l, nodes) in levels.iter().enumerate() {
                for &n in nodes {
                    level_of[n] = l;
                }
            }
            for n in 0..g.len() {
                for &p in &g.preds[n] {
                    assert!(level_of[p] < level_of[n]);
                }
            }
        }
    }

    #[test]
    fn critical_path_shorter_than_total_work() {
        let g = DataflowGraph::for_substep(RkPhase::Intermediate);
        let mc = MeshCounts::icosahedral(40962);
        let (cp, total) = g.critical_path(|n| n.work(&mc).flops);
        assert!(cp > 0.0 && cp < total);
        // There is real concurrency: the critical path is well below the
        // serial sum (this is the headroom the hybrid scheduler exploits).
        assert!(cp / total < 0.8, "cp/total = {}", cp / total);
    }

    #[test]
    fn work_scales_linearly_with_mesh_size() {
        let t = table_i();
        let small = MeshCounts::icosahedral(40962);
        let large = MeshCounts::icosahedral(4 * 40962);
        for p in &t {
            let r = p.work(&large).flops / p.work(&small).flops;
            assert!((r - 4.0).abs() < 0.1, "{}: ratio {r}", p.name);
        }
    }

    #[test]
    fn succs_is_transpose_of_preds() {
        let g = DataflowGraph::for_substep(RkPhase::Final);
        for n in 0..g.len() {
            for &p in &g.preds[n] {
                assert!(g.succs[p].contains(&n));
            }
            for &s in &g.succs[n] {
                assert!(g.preds[s].contains(&n));
            }
        }
    }
}
