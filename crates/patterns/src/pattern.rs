//! Stencil-pattern classes (Fig. 3) and model variables (Table I).
//!
//! The scanned figure does not key letters to geometries, so this module
//! fixes the reconstruction documented in DESIGN.md §3. What matters for the
//! reproduction is that (a) there are exactly eight distinct stencil shapes
//! over the three point types, (b) the Table I instances reference them
//! consistently, and (c) each shape knows its input/output locations and a
//! work estimate — which is what the hybrid scheduler consumes.

use serde::{Deserialize, Serialize};

/// The three MPAS point types of the C-staggered Voronoi mesh (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MeshLocation {
    /// Mass points: Voronoi cell centers.
    Cell,
    /// Velocity points: edge midpoints.
    Edge,
    /// Vorticity points: Voronoi corners (Delaunay triangle circumcenters).
    Vertex,
}

/// The eight stencil classes of Fig. 3 plus the point-local class.
///
/// `Local` covers the paper's rectangular X1–X6 boxes: embarrassingly
/// parallel point-wise updates with no neighborhood.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternClass {
    /// Cell ← edges of the cell (divergence-type reduction).
    A,
    /// Edge ← edges-on-edge + adjacent cells (TRiSK megastencil).
    B,
    /// Edge ← adjacent cells + vertices / vertex ← edges (curl-type).
    C,
    /// Cell ← neighboring cells (second-derivative interpolation).
    D,
    /// Vertex ← cells of the vertex (kite-area interpolation).
    E,
    /// Cell ← vertices of the cell.
    F,
    /// Edge ← vertices + edge neighborhood (APVM-upwinded PV).
    G,
    /// Edge ← the two adjacent cells / edges-on-edge average.
    H,
    /// Point-local computation (no stencil).
    Local,
}

impl PatternClass {
    /// Average number of neighborhood points read per output point, used by
    /// the flop/byte work model. Hexagon-dominant meshes have cell degree
    /// ~6, vertex degree 3, and |edgesOnEdge| ~10.
    pub fn stencil_width(self) -> f64 {
        match self {
            PatternClass::A => 6.0,
            PatternClass::B => 10.0,
            PatternClass::C => 4.0,
            PatternClass::D => 7.0,
            PatternClass::E => 3.0,
            PatternClass::F => 6.0,
            PatternClass::G => 4.0,
            PatternClass::H => 2.0,
            PatternClass::Local => 1.0,
        }
    }

    /// Whether the class has an irregular-reduction (scatter) natural form
    /// that needs the regularity-aware refactoring of Alg. 3 before it can
    /// be thread-parallelized.
    pub fn has_irregular_reduction(self) -> bool {
        matches!(
            self,
            PatternClass::A | PatternClass::C | PatternClass::E | PatternClass::F
        )
    }
}

/// Every model variable appearing in the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variable {
    /// Prognostic fluid thickness at cells.
    H,
    /// Prognostic normal velocity at edges.
    U,
    /// Provisional RK-substep thickness.
    ProvisH,
    /// Provisional RK-substep normal velocity.
    ProvisU,
    /// Thickness tendency.
    TendH,
    /// Velocity tendency.
    TendU,
    /// Thickness interpolated to edges.
    HEdge,
    /// Kinetic energy at cells.
    Ke,
    /// Relative vorticity at vertices.
    Vorticity,
    /// Relative vorticity interpolated to cells.
    VorticityCell,
    /// Velocity divergence at cells.
    Divergence,
    /// Potential vorticity at vertices.
    PvVertex,
    /// Potential vorticity at cells.
    PvCell,
    /// Potential vorticity at edges (APVM upwinded).
    PvEdge,
    /// Tangential velocity at edges (TRiSK reconstruction).
    V,
    /// Second thickness derivative, cell-1 side (4th-order h_edge blend).
    D2fdx2Cell1,
    /// Second thickness derivative, cell-2 side.
    D2fdx2Cell2,
    /// Reconstructed Cartesian velocity at cells, x component.
    URecX,
    /// Reconstructed Cartesian velocity at cells, y component.
    URecY,
    /// Reconstructed Cartesian velocity at cells, z component.
    URecZ,
    /// Reconstructed zonal velocity at cells.
    URecZonal,
    /// Reconstructed meridional velocity at cells.
    URecMeridional,
}

impl Variable {
    /// The mesh point type this variable lives on.
    pub fn location(self) -> MeshLocation {
        use Variable::*;
        match self {
            H | ProvisH | TendH | Ke | VorticityCell | Divergence | PvCell | URecX | URecY
            | URecZ | URecZonal | URecMeridional => MeshLocation::Cell,
            // The second-derivative blend terms are stored per edge (one
            // value for each of the edge's two cells), as in the MPAS
            // `deriv_two` machinery.
            U | ProvisU | TendU | HEdge | PvEdge | V | D2fdx2Cell1 | D2fdx2Cell2 => {
                MeshLocation::Edge
            }
            Vorticity | PvVertex => MeshLocation::Vertex,
        }
    }

    /// All variables, for exhaustiveness checks.
    pub const ALL: [Variable; 22] = [
        Variable::H,
        Variable::U,
        Variable::ProvisH,
        Variable::ProvisU,
        Variable::TendH,
        Variable::TendU,
        Variable::HEdge,
        Variable::Ke,
        Variable::Vorticity,
        Variable::VorticityCell,
        Variable::Divergence,
        Variable::PvVertex,
        Variable::PvCell,
        Variable::PvEdge,
        Variable::V,
        Variable::D2fdx2Cell1,
        Variable::D2fdx2Cell2,
        Variable::URecX,
        Variable::URecY,
        Variable::URecZ,
        Variable::URecZonal,
        Variable::URecMeridional,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_list_is_exhaustive_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for v in Variable::ALL {
            assert!(seen.insert(v), "{v:?} duplicated in ALL");
        }
        assert_eq!(seen.len(), 22);
    }

    #[test]
    fn variable_locations_partition_into_three_types() {
        let cells = Variable::ALL
            .iter()
            .filter(|v| v.location() == MeshLocation::Cell)
            .count();
        let edges = Variable::ALL
            .iter()
            .filter(|v| v.location() == MeshLocation::Edge)
            .count();
        let verts = Variable::ALL
            .iter()
            .filter(|v| v.location() == MeshLocation::Vertex)
            .count();
        assert_eq!(cells + edges + verts, 22);
        assert_eq!(verts, 2);
        assert_eq!(edges, 8);
    }

    #[test]
    fn eight_stencil_classes_plus_local() {
        let classes = [
            PatternClass::A,
            PatternClass::B,
            PatternClass::C,
            PatternClass::D,
            PatternClass::E,
            PatternClass::F,
            PatternClass::G,
            PatternClass::H,
        ];
        // All stencil widths are > 1; only Local is 1.
        for c in classes {
            assert!(c.stencil_width() > 1.0);
        }
        assert_eq!(PatternClass::Local.stencil_width(), 1.0);
    }

    #[test]
    fn divergence_like_classes_are_irregular() {
        assert!(PatternClass::A.has_irregular_reduction());
        assert!(!PatternClass::B.has_irregular_reduction());
        assert!(!PatternClass::Local.has_irregular_reduction());
    }
}
