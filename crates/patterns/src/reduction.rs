//! Irregular reductions and their refactorings (Algorithms 2–4).
//!
//! The natural MPAS form of a divergence-type stencil traverses **edges**
//! and scatters `±x[edge]` into the two adjacent **cells** (Alg. 2). Two
//! threads handling different edges of the same cell then race on the cell
//! accumulator, so the loop cannot be thread-parallelized as written. The
//! paper's fixes, reproduced here:
//!
//! * **Regularity-aware refactoring** (Alg. 3): invert the loop to cell
//!   order — each cell gathers from its own edges, writes are private, and
//!   the loop parallelizes embarrassingly. A branch decides the `±` sign.
//! * **Branch-free label matrix** (Alg. 4): precompute `L(i,j) = ±1` (0 for
//!   padding) and pad every cell to the same `maxEdges` width, removing the
//!   conditional so the inner loop vectorizes.
//!
//! All three forms compute the same result; property tests assert bitwise
//! agreement of gather vs. label-matrix and 1e-12 agreement vs. scatter
//! (whose different summation order legitimately perturbs rounding).

use mpas_mesh::Mesh;

/// The edge→cell signed reduction `y(i) = Σ_e ±x(e)` in all three loop
/// forms. Construction borrows nothing: methods take the mesh each call so
/// the struct is just a namespace plus the precomputed label matrix.
pub struct EdgeCellReduction;

impl EdgeCellReduction {
    /// Algorithm 2: edge-order scatter. `y` is overwritten.
    ///
    /// This form is correct serially but has a write race when the edge loop
    /// is split across threads — exactly the situation Fig. 6's naive
    /// "OpenMP" bar measures.
    pub fn scatter(mesh: &Mesh, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), mesh.n_edges());
        assert_eq!(y.len(), mesh.n_cells());
        y.fill(0.0);
        for (e, &xe) in x.iter().enumerate() {
            let [c1, c2] = mesh.cells_on_edge[e];
            y[c1 as usize] += xe;
            y[c2 as usize] -= xe;
        }
    }

    /// Algorithm 3: cell-order gather with a sign branch. `y` is
    /// overwritten. Race-free: each iteration writes only its own cell.
    pub fn gather(mesh: &Mesh, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), mesh.n_edges());
        assert_eq!(y.len(), mesh.n_cells());
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for &e in mesh.edges_of_cell(i) {
                if mesh.cells_on_edge[e as usize][0] as usize == i {
                    acc += x[e as usize];
                } else {
                    acc -= x[e as usize];
                }
            }
            *yi = acc;
        }
    }
}

/// Algorithm 4's precomputed label matrix: a dense `(n_cells, max_edges)`
/// table of signs (0 in padding slots) and edge indices (0 in padding slots,
/// harmless because the sign is 0). The fixed-width branch-free inner loop
/// is the form the paper hands to the 512-bit SIMD units.
pub struct LabelMatrix {
    /// Number of rows (cells).
    pub n_cells: usize,
    /// Fixed row width (`maxEdges`).
    pub width: usize,
    /// Row-major `(n_cells, width)` sign table: `+1`, `-1`, or `0` padding.
    pub labels: Vec<f64>,
    /// Row-major `(n_cells, width)` edge indices, padded with 0.
    pub edges: Vec<u32>,
}

impl LabelMatrix {
    /// Precompute the label matrix for a mesh.
    pub fn build(mesh: &Mesh) -> Self {
        let n_cells = mesh.n_cells();
        let width = mesh.max_edges();
        let mut labels = vec![0.0f64; n_cells * width];
        let mut edges = vec![0u32; n_cells * width];
        for i in 0..n_cells {
            let es = mesh.edges_of_cell(i);
            let signs = mesh.edge_signs_of_cell(i);
            for (j, (&e, &s)) in es.iter().zip(signs).enumerate() {
                labels[i * width + j] = s as f64;
                edges[i * width + j] = e;
            }
        }
        LabelMatrix {
            n_cells,
            width,
            labels,
            edges,
        }
    }

    /// Algorithm 4: branch-free fixed-width gather. `y` is overwritten.
    pub fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(y.len(), self.n_cells);
        let w = self.width;
        for (i, yi) in y.iter_mut().enumerate() {
            let row = i * w;
            let mut acc = 0.0;
            for j in 0..w {
                acc += self.labels[row + j] * x[self.edges[row + j] as usize];
            }
            *yi = acc;
        }
    }

    /// Branch-free gather over a sub-range of cells (used by executors that
    /// split a pattern between devices).
    pub fn apply_range(&self, x: &[f64], y: &mut [f64], range: std::ops::Range<usize>) {
        let w = self.width;
        for i in range {
            let row = i * w;
            let mut acc = 0.0;
            for j in 0..w {
                acc += self.labels[row + j] * x[self.edges[row + j] as usize];
            }
            y[i] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpas_mesh::{build_mesh, IcosaGrid};

    fn mesh() -> Mesh {
        build_mesh(&IcosaGrid::subdivide(3))
    }

    fn test_field(n: usize) -> Vec<f64> {
        (0..n)
            .map(|e| (e as f64 * 0.37).sin() * 3.0 + 0.1)
            .collect()
    }

    #[test]
    fn all_three_forms_agree() {
        let m = mesh();
        let x = test_field(m.n_edges());
        let mut y_scatter = vec![0.0; m.n_cells()];
        let mut y_gather = vec![0.0; m.n_cells()];
        let mut y_label = vec![0.0; m.n_cells()];
        EdgeCellReduction::scatter(&m, &x, &mut y_scatter);
        EdgeCellReduction::gather(&m, &x, &mut y_gather);
        LabelMatrix::build(&m).apply(&x, &mut y_label);
        for i in 0..m.n_cells() {
            assert!(
                (y_scatter[i] - y_gather[i]).abs() < 1e-12,
                "scatter vs gather at cell {i}"
            );
            // Gather and label-matrix sum in the same order with the same
            // signs -> bitwise identical.
            assert_eq!(y_gather[i], y_label[i], "gather vs label at cell {i}");
        }
    }

    #[test]
    fn label_matrix_shape() {
        let m = mesh();
        let lm = LabelMatrix::build(&m);
        assert_eq!(lm.width, 6);
        assert_eq!(lm.labels.len(), m.n_cells() * 6);
        // Pentagon rows have exactly one zero pad; hexagons none.
        let mut pads = 0usize;
        for i in 0..m.n_cells() {
            let zeros = (0..6).filter(|&j| lm.labels[i * 6 + j] == 0.0).count();
            assert!(zeros <= 1);
            pads += zeros;
        }
        assert_eq!(pads, 12, "one pad per pentagon");
    }

    #[test]
    fn apply_range_matches_full_apply() {
        let m = mesh();
        let lm = LabelMatrix::build(&m);
        let x = test_field(m.n_edges());
        let mut full = vec![0.0; m.n_cells()];
        lm.apply(&x, &mut full);
        let mut split = vec![0.0; m.n_cells()];
        let mid = m.n_cells() / 3;
        lm.apply_range(&x, &mut split, 0..mid);
        lm.apply_range(&x, &mut split, mid..m.n_cells());
        assert_eq!(full, split);
    }

    #[test]
    fn reduction_of_uniform_field_vanishes_nowhere_but_sums_to_zero() {
        // With x == const, y(i) = const * (#outward - #inward) which is
        // generally nonzero per cell, but the global sum telescopes to 0.
        let m = mesh();
        let x = vec![1.0; m.n_edges()];
        let mut y = vec![0.0; m.n_cells()];
        EdgeCellReduction::gather(&m, &x, &mut y);
        let total: f64 = y.iter().sum();
        assert!(total.abs() < 1e-9);
    }
}
