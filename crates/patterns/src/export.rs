//! Exports of the data-flow diagram: Graphviz DOT (the paper's Fig. 4 as
//! an artifact you can render) and a plain-text dependency report.

use crate::dataflow::{DataflowGraph, Kernel};
use std::fmt::Write as _;

fn kernel_label(k: Kernel) -> &'static str {
    match k {
        Kernel::ComputeTend => "compute_tend",
        Kernel::EnforceBoundaryEdge => "enforce_boundary_edge",
        Kernel::ComputeNextSubstepState => "compute_next_substep_state",
        Kernel::ComputeSolveDiagnostics => "compute_solve_diagnostics",
        Kernel::AccumulativeUpdate => "accumulative_update",
        Kernel::MpasReconstruct => "mpas_reconstruct",
    }
}

/// Render the graph as Graphviz DOT: one cluster per kernel (the gray/
/// yellow boxes of Fig. 4), circles for stencil patterns, rectangles for
/// the point-local X boxes, and one edge per data dependency.
pub fn to_dot(graph: &DataflowGraph) -> String {
    let mut s = String::new();
    writeln!(s, "digraph dataflow {{").unwrap();
    writeln!(s, "  rankdir=TB;").unwrap();
    writeln!(s, "  node [fontsize=10];").unwrap();

    // Clusters per kernel, preserving first-appearance order.
    let mut seen = Vec::new();
    for n in &graph.nodes {
        if !seen.contains(&n.kernel) {
            seen.push(n.kernel);
        }
    }
    for (ci, &k) in seen.iter().enumerate() {
        writeln!(s, "  subgraph cluster_{ci} {{").unwrap();
        writeln!(s, "    label=\"{}\";", kernel_label(k)).unwrap();
        for (id, n) in graph.nodes.iter().enumerate() {
            if n.kernel == k {
                let shape = if n.name.starts_with('X') {
                    "box"
                } else {
                    "circle"
                };
                writeln!(s, "    n{id} [label=\"{}\", shape={shape}];", n.name).unwrap();
            }
        }
        writeln!(s, "  }}").unwrap();
    }
    for (id, preds) in graph.preds.iter().enumerate() {
        for &p in preds {
            // Label the edge with the variables that carry the dependency.
            let vars: Vec<String> = graph.nodes[p]
                .outputs
                .iter()
                .filter(|v| {
                    graph.nodes[id].inputs.contains(v) || graph.nodes[id].outputs.contains(v)
                })
                .map(|v| format!("{v:?}"))
                .collect();
            writeln!(
                s,
                "  n{p} -> n{id} [label=\"{}\", fontsize=8];",
                vars.join(",")
            )
            .unwrap();
        }
    }
    writeln!(s, "}}").unwrap();
    s
}

/// A plain-text concurrency report: topological levels with their member
/// patterns (everything inside one level may run concurrently).
pub fn concurrency_report(graph: &DataflowGraph) -> String {
    let mut s = String::new();
    for (l, nodes) in graph.topo_levels().iter().enumerate() {
        let names: Vec<&str> = nodes.iter().map(|&n| graph.nodes[n].name).collect();
        writeln!(s, "level {l}: {}", names.join(" ")).unwrap();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::RkPhase;

    #[test]
    fn dot_contains_every_node_and_kernel_cluster() {
        let g = DataflowGraph::for_substep(RkPhase::Final);
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph dataflow {"));
        for n in &g.nodes {
            assert!(dot.contains(&format!("label=\"{}\"", n.name)), "{}", n.name);
        }
        for label in [
            "compute_tend",
            "enforce_boundary_edge",
            "accumulative_update",
            "compute_solve_diagnostics",
            "mpas_reconstruct",
        ] {
            assert!(dot.contains(label), "{label} cluster missing");
        }
        // Balanced braces (well-formed DOT).
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn dot_edge_count_matches_graph() {
        let g = DataflowGraph::for_substep(RkPhase::Intermediate);
        let dot = to_dot(&g);
        let n_edges: usize = g.preds.iter().map(|p| p.len()).sum();
        assert_eq!(dot.matches(" -> ").count(), n_edges);
    }

    #[test]
    fn concurrency_report_lists_all_nodes_once() {
        let g = DataflowGraph::for_substep(RkPhase::Intermediate);
        let rep = concurrency_report(&g);
        for n in &g.nodes {
            let count = rep.split_whitespace().filter(|w| *w == n.name).count();
            assert_eq!(count, 1, "{} appears {count} times", n.name);
        }
        // The diagnostics fan-out makes at least one wide level.
        let widest = g.topo_levels().iter().map(|l| l.len()).max().unwrap();
        assert!(widest >= 4, "widest level only {widest}");
    }
}
