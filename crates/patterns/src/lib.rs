#![warn(missing_docs)]
//! The paper's methodology layer: stencil-pattern taxonomy, the data-flow
//! diagram, and the irregular-reduction loop refactorings.
//!
//! The paper's central idea is to decompose the MPAS shallow-water model not
//! into *kernels* (too coarse for load balance) nor into *lines of code*
//! (unmaintainable), but into a small set of reusable **stencil patterns**
//! over the three mesh point types (mass / velocity / vorticity). The
//! pattern instances and the variables they read and write (the paper's
//! Table I) induce a data-flow diagram (Fig. 4) whose edges are the only
//! true dependencies — everything not ordered by the diagram may run
//! concurrently, on either device.
//!
//! * [`pattern`] — the eight stencil classes of Fig. 3 plus point-local
//!   computations, and the model variables of Table I.
//! * [`dataflow`] — pattern instances, the data-flow graph builder for one
//!   RK substep, topological levels and critical-path analysis.
//! * [`reduction`] — Algorithms 2–4: the scatter (edge-order) irregular
//!   reduction, the regularity-aware gather (cell-order) refactoring, and
//!   the branch-free label-matrix form used for SIMD.

pub mod codegen;
pub mod dataflow;
pub mod export;
pub mod pattern;
pub mod profile;
pub mod reduction;

pub use codegen::{generate_gather_fn, generate_stencil_module};
pub use dataflow::{DataflowGraph, Kernel, NodeId, PatternInstance, RkPhase};
pub use export::{concurrency_report, to_dot};
pub use pattern::{MeshLocation, PatternClass, Variable};
pub use profile::{kernel_profile, pattern_profile};
pub use reduction::{EdgeCellReduction, LabelMatrix};
