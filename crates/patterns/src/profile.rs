//! Kernel/pattern work profiling — the paper's §II.C step: "a profiling of
//! the code is done to examine the cost of each kernel", which is what
//! motivates the kernel-level assignment and exposes its imbalance.
//!
//! Costs come from the same [`crate::dataflow::Work`] model the scheduler
//! uses, so the profile is exactly what the hybrid policies see.

use crate::dataflow::{DataflowGraph, Kernel, MeshCounts, RkPhase};

/// Work share of one kernel within a substep.
#[derive(Debug, Clone)]
pub struct KernelProfile {
    /// The kernel.
    pub kernel: Kernel,
    /// Number of pattern instances in the kernel.
    pub n_patterns: usize,
    /// Total bytes moved by the kernel per substep.
    pub bytes: f64,
    /// Total flops per substep.
    pub flops: f64,
    /// Fraction of the substep's total bytes.
    pub share: f64,
}

/// Work share of one pattern instance.
#[derive(Debug, Clone)]
pub struct PatternProfile {
    /// Table-I label.
    pub name: &'static str,
    /// Owning kernel.
    pub kernel: Kernel,
    /// Bytes moved per substep.
    pub bytes: f64,
    /// Fraction of the substep total.
    pub share: f64,
}

/// Per-kernel profile of one substep, heaviest first.
pub fn kernel_profile(phase: RkPhase, mc: &MeshCounts) -> Vec<KernelProfile> {
    let g = DataflowGraph::for_substep(phase);
    let total: f64 = g.nodes.iter().map(|n| n.work(mc).bytes).sum();
    let mut order: Vec<Kernel> = Vec::new();
    for n in &g.nodes {
        if !order.contains(&n.kernel) {
            order.push(n.kernel);
        }
    }
    let mut out: Vec<KernelProfile> = order
        .into_iter()
        .map(|kernel| {
            let nodes: Vec<_> = g.nodes.iter().filter(|n| n.kernel == kernel).collect();
            let bytes: f64 = nodes.iter().map(|n| n.work(mc).bytes).sum();
            let flops: f64 = nodes.iter().map(|n| n.work(mc).flops).sum();
            KernelProfile {
                kernel,
                n_patterns: nodes.len(),
                bytes,
                flops,
                share: bytes / total,
            }
        })
        .collect();
    out.sort_by(|a, b| b.bytes.partial_cmp(&a.bytes).unwrap());
    out
}

/// Per-pattern profile of one substep, heaviest first.
pub fn pattern_profile(phase: RkPhase, mc: &MeshCounts) -> Vec<PatternProfile> {
    let g = DataflowGraph::for_substep(phase);
    let total: f64 = g.nodes.iter().map(|n| n.work(mc).bytes).sum();
    let mut out: Vec<PatternProfile> = g
        .nodes
        .iter()
        .map(|n| PatternProfile {
            name: n.name,
            kernel: n.kernel,
            bytes: n.work(mc).bytes,
            share: n.work(mc).bytes / total,
        })
        .collect();
    out.sort_by(|a, b| b.bytes.partial_cmp(&a.bytes).unwrap());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MeshCounts {
        MeshCounts::icosahedral(655_362)
    }

    #[test]
    fn shares_sum_to_one() {
        for phase in [RkPhase::Intermediate, RkPhase::Final] {
            let ks = kernel_profile(phase, &mc());
            let total: f64 = ks.iter().map(|k| k.share).sum();
            assert!((total - 1.0).abs() < 1e-12);
            let ps = pattern_profile(phase, &mc());
            let total: f64 = ps.iter().map(|p| p.share).sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn diagnostics_and_tend_dominate() {
        // The paper's observation: compute_solve_diagnostics and
        // compute_tend are the time-consuming kernels (hence offloaded).
        let ks = kernel_profile(RkPhase::Intermediate, &mc());
        let top2: Vec<Kernel> = ks.iter().take(2).map(|k| k.kernel).collect();
        assert!(top2.contains(&Kernel::ComputeSolveDiagnostics));
        assert!(top2.contains(&Kernel::ComputeTend));
        let heavy_share: f64 = ks.iter().take(2).map(|k| k.share).sum();
        assert!(heavy_share > 0.75, "heavy kernels only {heavy_share}");
    }

    #[test]
    fn b1_is_the_heaviest_pattern() {
        // The TRiSK megastencil moves the most bytes — the single pattern
        // whose placement matters most.
        let ps = pattern_profile(RkPhase::Intermediate, &mc());
        assert_eq!(ps[0].name, "B1", "heaviest is {}", ps[0].name);
        assert!(ps[0].share > 0.15);
    }

    #[test]
    fn profiles_are_resolution_invariant_in_shares() {
        // Shares shift only through the (tiny) "+2 cells" Euler correction
        // in the edge/vertex counts.
        let small = pattern_profile(RkPhase::Final, &MeshCounts::icosahedral(40_962));
        let large = pattern_profile(RkPhase::Final, &MeshCounts::icosahedral(2_621_442));
        for a in &small {
            let b = large.iter().find(|p| p.name == a.name).unwrap();
            assert!(
                (a.share - b.share).abs() < 1e-3,
                "{}: {} vs {}",
                a.name,
                a.share,
                b.share
            );
        }
    }
}
