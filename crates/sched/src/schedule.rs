//! Schedule results and the shared scheduling state (device timelines,
//! serialized transfer link, variable residency) used by every policy.

use crate::dag::{TaskDag, DEV_ACC, DEV_CPU};
use crate::platform::Platform;
use mpas_patterns::pattern::Variable;
use std::collections::HashMap;

/// Where a node (or part of it) ran.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Placement {
    /// Entirely on the host CPU.
    Cpu,
    /// Entirely on the accelerator.
    Acc,
    /// Split with this fraction of the output range on the accelerator.
    Split(f64),
}

/// Scheduling decision and timing for one node.
#[derive(Debug, Clone)]
pub struct NodeSchedule {
    /// Table-I pattern-instance label.
    pub name: &'static str,
    /// Device assignment (possibly split).
    pub placement: Placement,
    /// Start time, seconds from substep entry.
    pub start: f64,
    /// Finish time, seconds from substep entry.
    pub finish: f64,
}

/// Result of scheduling one substep graph.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Completion time of the whole substep, seconds.
    pub makespan: f64,
    /// Per-node decisions and timings, indexed by DAG node id.
    pub nodes: Vec<NodeSchedule>,
    /// CPU busy time (for utilization/load-balance reporting).
    pub cpu_busy: f64,
    /// Accelerator busy time.
    pub acc_busy: f64,
}

impl Schedule {
    /// Fraction of the makespan during which the less-used device idles —
    /// the load-imbalance the pattern-driven design attacks.
    pub fn imbalance(&self) -> f64 {
        let lo = self.cpu_busy.min(self.acc_busy);
        let hi = self.cpu_busy.max(self.acc_busy);
        if hi == 0.0 {
            0.0
        } else {
            (hi - lo) / hi
        }
    }
}

/// Tracks which devices hold a current copy of each variable.
///
/// At substep entry every input is synchronized on both devices (the paper
/// keeps mesh and state resident; boundaries sync at the halo-exchange
/// points). A write leaves the value only where it was produced; a transfer
/// makes it resident everywhere.
#[derive(Debug, Clone, Default)]
pub struct Residency {
    map: HashMap<Variable, (bool, bool)>, // (on_cpu, on_acc)
}

impl Residency {
    /// Fresh substep-entry state: everything resident everywhere.
    pub fn fresh() -> Self {
        Residency {
            map: HashMap::new(),
        }
    }

    /// Is `v` resident on the given device?
    pub fn present(&self, v: Variable, on_acc: bool) -> bool {
        match self.map.get(&v) {
            None => true, // substep input: everywhere
            Some(&(c, a)) => {
                if on_acc {
                    a
                } else {
                    c
                }
            }
        }
    }

    /// Record a write of `v` under the given placement.
    pub fn write(&mut self, v: Variable, placement: Placement) {
        let entry = match placement {
            Placement::Cpu => (true, false),
            Placement::Acc => (false, true),
            Placement::Split(_) => (true, true), // halves merged via link
        };
        self.map.insert(v, entry);
    }

    /// Mark `v` resident on both devices (after a transfer).
    pub fn mark_everywhere(&mut self, v: Variable) {
        self.map.insert(v, (true, true));
    }
}

/// Mutable state shared by the list schedulers: per-device busy intervals
/// (supporting insertion-based EFT), the serialized transfer link, variable
/// residency, and the per-node results.
#[derive(Debug, Clone)]
pub struct ListState<'a> {
    dag: &'a TaskDag,
    platform: &'a Platform,
    /// Sorted, disjoint busy intervals per device.
    slots: [Vec<(f64, f64)>; 2],
    link_avail: f64,
    res: Residency,
    node_finish: Vec<f64>,
    placed: Vec<Option<NodeSchedule>>,
    busy: [f64; 2],
}

/// One placement candidate evaluated by [`ListState::eft`].
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// Candidate device index ([`DEV_CPU`] or [`DEV_ACC`]).
    pub dev: usize,
    /// Start of execution on the device.
    pub start: f64,
    /// End of execution.
    pub finish: f64,
    /// Bytes transferred to stage missing inputs (0 when resident).
    pub xfer_bytes: f64,
    /// Completion time of the staging transfer (start of link occupancy
    /// release); equals data readiness when `xfer_bytes > 0`.
    pub xfer_done: f64,
}

impl<'a> ListState<'a> {
    /// Fresh state over a DAG and platform.
    pub fn new(dag: &'a TaskDag, platform: &'a Platform) -> Self {
        ListState {
            dag,
            platform,
            slots: [Vec::new(), Vec::new()],
            link_avail: 0.0,
            res: Residency::fresh(),
            node_finish: vec![0.0; dag.len()],
            placed: vec![None; dag.len()],
            busy: [0.0; 2],
        }
    }

    /// Dependency-ready time of `id` (max predecessor finish).
    pub fn ready_time(&self, id: usize) -> f64 {
        self.dag.preds[id]
            .iter()
            .map(|&p| self.node_finish[p])
            .fold(0.0f64, f64::max)
    }

    /// Earliest gap of length `dur` on `dev` starting no earlier than
    /// `ready` (insertion-based scheduling).
    fn earliest_fit(&self, dev: usize, ready: f64, dur: f64) -> f64 {
        let mut t = ready;
        for &(s, e) in &self.slots[dev] {
            if t + dur <= s + 1e-18 {
                break;
            }
            if e > t {
                t = e;
            }
        }
        t
    }

    fn occupy(&mut self, dev: usize, start: f64, end: f64) {
        let idx = self.slots[dev]
            .iter()
            .position(|&(s, _)| s >= start)
            .unwrap_or(self.slots[dev].len());
        self.slots[dev].insert(idx, (start, end));
        self.busy[dev] += end - start;
    }

    /// Evaluate the earliest finish of `id` on `dev`, accounting for a
    /// blocking staging transfer of any inputs not resident there.
    pub fn eft(&self, id: usize, dev: usize) -> Candidate {
        let ready = self.ready_time(id);
        let node = &self.dag.nodes[id];
        let xfer_bytes: f64 = node
            .inputs
            .iter()
            .filter(|&&v| !self.res.present(v, dev == DEV_ACC))
            .map(|&v| self.dag.var_bytes[&v])
            .sum();
        let (data_ready, xfer_done) = if xfer_bytes > 0.0 {
            let done = ready.max(self.link_avail) + self.platform.link.time(xfer_bytes);
            (done, done)
        } else {
            (ready, ready)
        };
        let dur = node.cost[dev];
        let start = self.earliest_fit(dev, data_ready, dur);
        Candidate {
            dev,
            start,
            finish: start + dur,
            xfer_bytes,
            xfer_done,
        }
    }

    /// Commit a candidate placement for `id`.
    pub fn commit(&mut self, id: usize, c: Candidate) {
        if c.xfer_bytes > 0.0 {
            self.link_avail = c.xfer_done;
            // Transferred inputs become resident on both devices.
            let inputs = self.dag.nodes[id].inputs.clone();
            for v in inputs {
                if !self.res.present(v, c.dev == DEV_ACC) {
                    self.res.mark_everywhere(v);
                }
            }
        }
        self.occupy(c.dev, c.start, c.finish);
        let placement = if c.dev == DEV_CPU {
            Placement::Cpu
        } else {
            Placement::Acc
        };
        for &v in &self.dag.nodes[id].outputs {
            self.res.write(v, placement);
        }
        self.node_finish[id] = c.finish;
        self.placed[id] = Some(NodeSchedule {
            name: self.dag.nodes[id].name,
            placement,
            start: c.start,
            finish: c.finish,
        });
    }

    /// Current busy time of a device.
    pub fn busy(&self, dev: usize) -> f64 {
        self.busy[dev]
    }

    /// Makespan over everything committed so far.
    pub fn makespan(&self) -> f64 {
        self.node_finish.iter().copied().fold(0.0f64, f64::max)
    }

    /// Finalize into a [`Schedule`] (every node must be committed).
    pub fn into_schedule(self) -> Schedule {
        let makespan = self.makespan();
        Schedule {
            makespan,
            nodes: self
                .placed
                .into_iter()
                .map(|n| n.expect("every node must be scheduled"))
                .collect(),
            cpu_busy: self.busy[DEV_CPU],
            acc_busy: self.busy[DEV_ACC],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(cpu_busy: f64, acc_busy: f64) -> Schedule {
        Schedule {
            makespan: 1.0,
            nodes: Vec::new(),
            cpu_busy,
            acc_busy,
        }
    }

    #[test]
    fn imbalance_of_idle_schedule_is_zero() {
        // Zero busy time on both devices: no imbalance, no division by zero.
        assert_eq!(sched(0.0, 0.0).imbalance(), 0.0);
    }

    #[test]
    fn imbalance_of_single_device_schedule_is_total() {
        // All work on one device: the other idles 100% of the busy span.
        assert_eq!(sched(1.0, 0.0).imbalance(), 1.0);
        assert_eq!(sched(0.0, 2.5).imbalance(), 1.0);
    }

    #[test]
    fn imbalance_of_balanced_schedule_is_zero() {
        assert_eq!(sched(3.0, 3.0).imbalance(), 0.0);
    }

    #[test]
    fn imbalance_is_symmetric_and_fractional() {
        let a = sched(1.0, 4.0).imbalance();
        let b = sched(4.0, 1.0).imbalance();
        assert_eq!(a, b);
        assert!((a - 0.75).abs() < 1e-15);
    }

    #[test]
    fn residency_starts_everywhere_and_tracks_writes() {
        use mpas_patterns::pattern::Variable::*;
        let mut r = Residency::fresh();
        assert!(r.present(TendU, false) && r.present(TendU, true));
        r.write(TendU, Placement::Acc);
        assert!(!r.present(TendU, false) && r.present(TendU, true));
        r.mark_everywhere(TendU);
        assert!(r.present(TendU, false) && r.present(TendU, true));
        r.write(TendU, Placement::Split(0.5));
        assert!(r.present(TendU, false) && r.present(TendU, true));
    }
}
