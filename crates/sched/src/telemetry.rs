//! Telemetry hooks for scheduling decisions.
//!
//! [`record_schedule`] dumps one [`Schedule`] into a
//! [`mpas_telemetry::Recorder`]: a `sched.decision` event per DAG node
//! (task, placement, predicted start/finish), placement-mix counters, and
//! makespan/imbalance gauges. The events carry enough context to replay the
//! modeled timeline next to measured spans in a combined trace.

use crate::schedule::{Placement, Schedule};
use mpas_telemetry::Recorder;

/// Human-readable placement tag used in events and counter names.
pub fn placement_tag(p: Placement) -> String {
    match p {
        Placement::Cpu => "cpu".to_string(),
        Placement::Acc => "acc".to_string(),
        Placement::Split(f) => format!("split({f:.2})"),
    }
}

/// Record every decision of `sched` into `rec` under the `sched.*`
/// namespace. No-op (beyond one branch per call) when `rec` is disabled.
pub fn record_schedule(rec: &Recorder, policy: &str, sched: &Schedule) {
    if !rec.is_enabled() {
        return;
    }
    for node in &sched.nodes {
        rec.event(
            "sched.decision",
            &[
                ("policy", policy.to_string()),
                ("task", node.name.to_string()),
                ("placement", placement_tag(node.placement)),
                ("predicted_start_s", format!("{:.3e}", node.start)),
                ("predicted_finish_s", format!("{:.3e}", node.finish)),
            ],
        );
        let bucket = match node.placement {
            Placement::Cpu => "sched.placements.cpu",
            Placement::Acc => "sched.placements.acc",
            Placement::Split(_) => "sched.placements.split",
        };
        rec.add(bucket, 1);
    }
    rec.set_gauge("sched.makespan_seconds", sched.makespan);
    rec.set_gauge("sched.imbalance", sched.imbalance());
    rec.set_gauge("sched.cpu_busy_seconds", sched.cpu_busy);
    rec.set_gauge("sched.acc_busy_seconds", sched.acc_busy);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::NodeSchedule;

    fn toy_schedule() -> Schedule {
        Schedule {
            makespan: 2.0,
            nodes: vec![
                NodeSchedule {
                    name: "A1",
                    placement: Placement::Cpu,
                    start: 0.0,
                    finish: 1.0,
                },
                NodeSchedule {
                    name: "H2",
                    placement: Placement::Split(0.75),
                    start: 1.0,
                    finish: 2.0,
                },
            ],
            cpu_busy: 2.0,
            acc_busy: 1.0,
        }
    }

    #[test]
    fn records_one_event_per_node_plus_gauges() {
        let rec = Recorder::new();
        record_schedule(&rec, "heft", &toy_schedule());
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "sched.decision");
        assert!(events[0].args.iter().any(|(k, v)| k == "task" && v == "A1"));
        assert!(events[1]
            .args
            .iter()
            .any(|(k, v)| k == "placement" && v == "split(0.75)"));
        let snap = rec.snapshot();
        assert_eq!(snap.counter("sched.placements.cpu"), Some(1));
        assert_eq!(snap.counter("sched.placements.split"), Some(1));
        assert_eq!(snap.gauge("sched.makespan_seconds"), Some(2.0));
        assert_eq!(snap.gauge("sched.imbalance"), Some(0.5));
    }

    #[test]
    fn noop_recorder_records_nothing() {
        let rec = Recorder::noop();
        record_schedule(&rec, "heft", &toy_schedule());
        assert!(rec.events().is_empty());
        assert!(rec.snapshot().counters.is_empty());
    }
}
