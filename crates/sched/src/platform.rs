//! Simulated devices and the host↔device transfer link (Table II).
//!
//! The paper's node pairs a 10-core Xeon E5-2680 v2 with a 60-core Xeon Phi
//! 5110P. Neither is available here (and Rust has no LEO offload), so the
//! hybrid engine runs against *device descriptors*: peak and effective
//! throughputs calibrated from Table II plus published STREAM-class
//! measurements, and a PCIe-like transfer link. The scheduling code is
//! exactly what a real backend would drive; only the clock is simulated.
//!
//! The shallow-water kernels are strongly memory-bound (arithmetic
//! intensity ≈ 0.2 flop/byte), so the roofline in [`DeviceSpec::node_time`]
//! is almost always the bandwidth leg — as on the real machines.

use mpas_patterns::dataflow::Work;

/// One computing device (a CPU socket group or an accelerator).
#[derive(Debug, Clone, Copy)]
pub struct DeviceSpec {
    /// Human-readable device identifier.
    pub name: &'static str,
    /// Worker threads usable for kernels.
    pub n_workers: usize,
    /// Effective attainable flop rate with all workers, flop/s.
    pub flops: f64,
    /// Effective memory bandwidth with all workers, bytes/s (gather-heavy
    /// workload, well below STREAM peak).
    pub mem_bw: f64,
    /// Effective bandwidth of a single worker, bytes/s.
    pub mem_bw_one: f64,
    /// Fixed cost of launching one parallel region (OpenMP fork/join or
    /// offload kernel launch), seconds.
    pub launch_overhead: f64,
}

impl DeviceSpec {
    /// One core of the Xeon E5-2680 v2 — the paper's "original CPU code"
    /// baseline. Calibrated so a full RK4 step on the 40 962-cell mesh
    /// costs ≈ 0.27 s (the paper's Fig. 7 leftmost bar).
    pub fn cpu_single_core() -> Self {
        DeviceSpec {
            name: "xeon-e5-2680v2-1core",
            n_workers: 1,
            flops: 4.5e9,
            mem_bw: 5.2e9,
            mem_bw_one: 5.2e9,
            launch_overhead: 0.0,
        }
    }

    /// The full 10-core Xeon E5-2680 v2 (Table II, left column).
    pub fn xeon_e5_2680v2() -> Self {
        DeviceSpec {
            name: "xeon-e5-2680v2",
            n_workers: 10,
            flops: 45.0e9,
            mem_bw: 20.0e9,
            mem_bw_one: 5.2e9,
            launch_overhead: 1.0e-5,
        }
    }

    /// The Xeon Phi 5110P with one core reserved for the offload engine
    /// (Table II, right column; §IV.B of the paper).
    pub fn xeon_phi_5110p() -> Self {
        DeviceSpec {
            name: "xeon-phi-5110p",
            n_workers: 236,
            flops: 120.0e9,
            mem_bw: 28.0e9,
            mem_bw_one: 0.35e9,
            launch_overhead: 4.0e-5,
        }
    }

    /// One scalar, unoptimized Xeon Phi core — the Fig. 6 baseline.
    pub fn phi_single_core() -> Self {
        DeviceSpec {
            name: "xeon-phi-1core",
            n_workers: 1,
            flops: 1.0e9,
            mem_bw: 0.35e9,
            mem_bw_one: 0.35e9,
            launch_overhead: 0.0,
        }
    }

    /// Roofline execution time of a chunk of work using a `share` of the
    /// device (`0 < share <= 1`), plus the launch overhead.
    pub fn node_time_share(&self, work: Work, share: f64) -> f64 {
        assert!(share > 0.0 && share <= 1.0 + 1e-12);
        // Workers are integral: even a tiny share keeps one whole worker.
        let workers = (self.n_workers as f64 * share).max(1.0);
        let bw = self.mem_bw.min(self.mem_bw_one * workers);
        let fl = (self.flops * share).max(self.flops / self.n_workers as f64);
        (work.flops / fl).max(work.bytes / bw) + self.launch_overhead
    }

    /// Roofline execution time using the whole device.
    pub fn node_time(&self, work: Work) -> f64 {
        self.node_time_share(work, 1.0)
    }
}

/// Host↔device transfer link (PCIe 2.0 x16 for the 5110P).
#[derive(Debug, Clone, Copy)]
pub struct TransferLink {
    /// One-way latency per transfer, seconds.
    pub latency: f64,
    /// Sustained bandwidth, bytes/s.
    pub bandwidth: f64,
}

impl TransferLink {
    /// PCIe 2.0 x16 as shipped with the 5110P: ~6 GB/s sustained, ~10 µs
    /// per offload transfer setup.
    pub fn pcie2_x16() -> Self {
        TransferLink {
            latency: 1.0e-5,
            bandwidth: 6.0e9,
        }
    }

    /// Time to move `bytes` across the link.
    pub fn time(&self, bytes: f64) -> f64 {
        self.latency + bytes / self.bandwidth
    }
}

/// The simulated heterogeneous node: host CPU + accelerator + link.
#[derive(Debug, Clone, Copy)]
pub struct Platform {
    /// The host multi-core CPU.
    pub cpu: DeviceSpec,
    /// The many-core accelerator.
    pub acc: DeviceSpec,
    /// The host↔device transfer link.
    pub link: TransferLink,
}

impl Platform {
    /// The paper's node (Table II).
    pub fn paper_node() -> Self {
        Platform {
            cpu: DeviceSpec::xeon_e5_2680v2(),
            acc: DeviceSpec::xeon_phi_5110p(),
            link: TransferLink::pcie2_x16(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(flops: f64, bytes: f64) -> Work {
        Work { flops, bytes }
    }

    #[test]
    fn kernels_are_bandwidth_bound_on_every_device() {
        // Arithmetic intensity 0.2 flop/byte: the bandwidth leg must bind.
        let work = w(0.2e9, 1.0e9);
        for d in [
            DeviceSpec::cpu_single_core(),
            DeviceSpec::xeon_e5_2680v2(),
            DeviceSpec::xeon_phi_5110p(),
        ] {
            let t = d.node_time(work);
            let bw_leg = work.bytes / d.mem_bw + d.launch_overhead;
            assert!(
                (t - bw_leg).abs() < 1e-12,
                "{}: not bandwidth bound",
                d.name
            );
        }
    }

    #[test]
    fn full_devices_beat_single_cores() {
        let work = w(1e9, 5e9);
        assert!(
            DeviceSpec::xeon_e5_2680v2().node_time(work)
                < DeviceSpec::cpu_single_core().node_time(work)
        );
        assert!(
            DeviceSpec::xeon_phi_5110p().node_time(work)
                < DeviceSpec::phi_single_core().node_time(work)
        );
    }

    #[test]
    fn share_scaling_is_monotone() {
        let d = DeviceSpec::xeon_phi_5110p();
        let work = w(1e8, 1e9);
        let t_full = d.node_time_share(work, 1.0);
        let t_half = d.node_time_share(work, 0.5);
        let t_tenth = d.node_time_share(work, 0.1);
        // Half the Phi already saturates the aggregate bandwidth (the real
        // 5110P behaves the same); a tenth does not.
        assert!(t_half >= t_full);
        assert!(t_tenth > t_half);
    }

    #[test]
    fn small_shares_clamp_to_one_worker() {
        let d = DeviceSpec::xeon_e5_2680v2();
        let work = w(0.0, 1e9);
        // 1/100 of a 10-worker device still has one whole worker's bw.
        let t = d.node_time_share(work, 0.01);
        assert!(t <= work.bytes / d.mem_bw_one + d.launch_overhead + 1e-9);
    }

    #[test]
    fn link_time_has_latency_floor() {
        let l = TransferLink::pcie2_x16();
        assert!(l.time(0.0) >= 1.0e-5);
        assert!(l.time(6.0e9) > 1.0);
    }

    #[test]
    fn phi_aggregate_beats_cpu_aggregate_in_bandwidth() {
        // Table II: the accelerator is the faster device overall — the
        // premise of putting the heavy kernels there.
        let p = Platform::paper_node();
        assert!(p.acc.mem_bw > p.cpu.mem_bw);
    }
}
