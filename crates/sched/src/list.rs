//! Classic DAG list schedulers over the [`TaskDag`] view: HEFT, CPOP, a
//! depth-bounded lookahead variant of HEFT, and a parameterized
//! dynamic-list scheduler in the dslab style.
//!
//! All of them share the [`ListState`] machinery: insertion-based EFT on
//! per-device timelines, a serialized transfer link, and residency-aware
//! staging transfers — the same device model the paper's policies use, so
//! makespans are directly comparable.

use crate::dag::{TaskDag, DEV_ACC, DEV_CPU};
use crate::platform::Platform;
use crate::policy::SchedulerPolicy;
use crate::schedule::{ListState, Schedule};

/// Order node ids by decreasing key, breaking ties by program order
/// (stable, deterministic).
fn order_by_desc(keys: &[f64]) -> Vec<usize> {
    let mut ids: Vec<usize> = (0..keys.len()).collect();
    ids.sort_by(|&a, &b| keys[b].partial_cmp(&keys[a]).unwrap().then(a.cmp(&b)));
    ids
}

/// Heterogeneous Earliest Finish Time (Topcuoglu et al. 2002): schedule in
/// decreasing upward-rank order, placing each task on the device that
/// finishes it earliest with insertion-based gap filling.
#[derive(Debug, Clone, Copy, Default)]
pub struct Heft;

impl SchedulerPolicy for Heft {
    fn name(&self) -> String {
        "heft".into()
    }

    fn schedule(&self, dag: &TaskDag, platform: &Platform) -> Schedule {
        let ranks = dag.upward_ranks(platform);
        let mut state = ListState::new(dag, platform);
        for id in order_by_desc(&ranks) {
            let c_cpu = state.eft(id, DEV_CPU);
            let c_acc = state.eft(id, DEV_ACC);
            let best = if c_cpu.finish <= c_acc.finish {
                c_cpu
            } else {
                c_acc
            };
            state.commit(id, best);
        }
        state.into_schedule()
    }
}

/// Critical Path On Processor (Topcuoglu et al. 2002): tasks on the
/// critical path (maximal `rank_u + rank_d`) are pinned to the single
/// device that executes the whole path fastest; everything else is placed
/// by EFT, in decreasing `rank_u + rank_d` priority.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cpop;

impl SchedulerPolicy for Cpop {
    fn name(&self) -> String {
        "cpop".into()
    }

    fn schedule(&self, dag: &TaskDag, platform: &Platform) -> Schedule {
        let up = dag.upward_ranks(platform);
        let down = dag.downward_ranks(platform);
        let prio: Vec<f64> = up.iter().zip(&down).map(|(u, d)| u + d).collect();
        let cp_len = prio.iter().copied().fold(0.0f64, f64::max);
        let on_cp: Vec<bool> = prio
            .iter()
            .map(|&p| (cp_len - p).abs() <= 1e-12 * cp_len.max(1.0))
            .collect();
        // Pin the critical path to the device that runs its sum fastest.
        let cp_cost = |dev: usize| -> f64 {
            dag.nodes
                .iter()
                .zip(&on_cp)
                .filter(|(_, &cp)| cp)
                .map(|(n, _)| n.cost[dev])
                .sum()
        };
        let cp_dev = if cp_cost(DEV_CPU) <= cp_cost(DEV_ACC) {
            DEV_CPU
        } else {
            DEV_ACC
        };

        // Priority order is the longest path *through* each node, which is
        // not topological (a join node can outrank one of its parents), so
        // CPOP schedules the highest-priority node of the *ready set*.
        let mut state = ListState::new(dag, platform);
        let mut unplaced_preds: Vec<usize> = dag.preds.iter().map(Vec::len).collect();
        let mut ready: Vec<usize> = (0..dag.len()).filter(|&i| unplaced_preds[i] == 0).collect();
        let mut done = 0usize;
        while done < dag.len() {
            let (pos, &id) = ready
                .iter()
                .enumerate()
                .max_by(|(_, &a), (_, &b)| prio[a].partial_cmp(&prio[b]).unwrap().then(b.cmp(&a)))
                .expect("acyclic DAG always has a ready task");
            ready.swap_remove(pos);
            let best = if on_cp[id] {
                state.eft(id, cp_dev)
            } else {
                let c_cpu = state.eft(id, DEV_CPU);
                let c_acc = state.eft(id, DEV_ACC);
                if c_cpu.finish <= c_acc.finish {
                    c_cpu
                } else {
                    c_acc
                }
            };
            state.commit(id, best);
            done += 1;
            for &s in &dag.succs[id] {
                unplaced_preds[s] -= 1;
                if unplaced_preds[s] == 0 {
                    ready.push(s);
                }
            }
        }
        state.into_schedule()
    }
}

/// HEFT with depth-bounded lookahead (Bittencourt et al. 2010): each
/// device candidate for the current task is evaluated by tentatively
/// committing it and greedily EFT-scheduling the next `depth` tasks of the
/// rank order; the candidate minimizing that horizon's makespan wins.
#[derive(Debug, Clone, Copy)]
pub struct Lookahead {
    /// How many successors in rank order to schedule tentatively (≥ 1).
    pub depth: usize,
}

impl Default for Lookahead {
    fn default() -> Self {
        Lookahead { depth: 2 }
    }
}

impl SchedulerPolicy for Lookahead {
    fn name(&self) -> String {
        format!("lookahead[depth={}]", self.depth)
    }

    fn schedule(&self, dag: &TaskDag, platform: &Platform) -> Schedule {
        let ranks = dag.upward_ranks(platform);
        let order = order_by_desc(&ranks);
        let mut state = ListState::new(dag, platform);
        for (pos, &id) in order.iter().enumerate() {
            let horizon = &order[pos + 1..(pos + 1 + self.depth).min(order.len())];
            let mut best: Option<(f64, f64, usize)> = None; // (horizon makespan, own finish, dev)
            for dev in [DEV_CPU, DEV_ACC] {
                let cand = state.eft(id, dev);
                let mut trial = state.clone();
                trial.commit(id, cand);
                for &h in horizon {
                    let c_cpu = trial.eft(h, DEV_CPU);
                    let c_acc = trial.eft(h, DEV_ACC);
                    let c = if c_cpu.finish <= c_acc.finish {
                        c_cpu
                    } else {
                        c_acc
                    };
                    trial.commit(h, c);
                }
                let key = (trial.makespan(), cand.finish, dev);
                let better = match best {
                    None => true,
                    Some(b) => (key.0, key.1) < (b.0, b.1),
                };
                if better {
                    best = Some(key);
                }
            }
            let dev = best.unwrap().2;
            let cand = state.eft(id, dev);
            state.commit(id, cand);
        }
        state.into_schedule()
    }
}

/// Task-selection criterion of the [`DynamicList`] scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskCriterion {
    /// Largest mean compute cost first.
    Comp,
    /// Largest upward rank first (HEFT ordering restricted to ready tasks).
    Rank,
    /// Largest output bytes first (unblock the most data movement).
    Bytes,
    /// Program order (Algorithm-1 textual order).
    Order,
}

/// Resource-selection criterion of the [`DynamicList`] scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceCriterion {
    /// Earliest finish time across devices (insertion-based).
    Eft,
    /// The device with the smaller execution cost, ignoring queues.
    Fastest,
    /// The device with the least accumulated busy time.
    Balanced,
}

/// Dynamic list scheduling in the dslab style: repeatedly pick the
/// highest-priority *ready* task and place it by the resource criterion.
/// Unlike HEFT the priority is evaluated over the ready set only, so the
/// schedule adapts to what earlier placements unlocked.
#[derive(Debug, Clone, Copy)]
pub struct DynamicList {
    /// Which ready task to schedule next.
    pub task: TaskCriterion,
    /// Which device receives it.
    pub resource: ResourceCriterion,
}

impl Default for DynamicList {
    fn default() -> Self {
        DynamicList {
            task: TaskCriterion::Rank,
            resource: ResourceCriterion::Eft,
        }
    }
}

impl SchedulerPolicy for DynamicList {
    fn name(&self) -> String {
        let task = match self.task {
            TaskCriterion::Comp => "comp",
            TaskCriterion::Rank => "rank",
            TaskCriterion::Bytes => "bytes",
            TaskCriterion::Order => "order",
        };
        let resource = match self.resource {
            ResourceCriterion::Eft => "eft",
            ResourceCriterion::Fastest => "fastest",
            ResourceCriterion::Balanced => "balanced",
        };
        format!("dynamic-list[task={task},resource={resource}]")
    }

    fn schedule(&self, dag: &TaskDag, platform: &Platform) -> Schedule {
        let mean = dag.mean_costs();
        let ranks = dag.upward_ranks(platform);
        let key = |id: usize| -> f64 {
            match self.task {
                TaskCriterion::Comp => mean[id],
                TaskCriterion::Rank => ranks[id],
                TaskCriterion::Bytes => dag.nodes[id].out_bytes,
                TaskCriterion::Order => -(id as f64),
            }
        };

        let mut state = ListState::new(dag, platform);
        let mut unplaced_preds: Vec<usize> = dag.preds.iter().map(Vec::len).collect();
        let mut ready: Vec<usize> = (0..dag.len()).filter(|&i| unplaced_preds[i] == 0).collect();
        let mut done = 0usize;
        while done < dag.len() {
            // Highest key wins; ties go to program order.
            let (pos, &id) = ready
                .iter()
                .enumerate()
                .max_by(|(_, &a), (_, &b)| key(a).partial_cmp(&key(b)).unwrap().then(b.cmp(&a)))
                .expect("acyclic DAG always has a ready task");
            ready.swap_remove(pos);

            let cand = match self.resource {
                ResourceCriterion::Eft => {
                    let c_cpu = state.eft(id, DEV_CPU);
                    let c_acc = state.eft(id, DEV_ACC);
                    if c_cpu.finish <= c_acc.finish {
                        c_cpu
                    } else {
                        c_acc
                    }
                }
                ResourceCriterion::Fastest => {
                    let dev = if dag.nodes[id].cost[DEV_CPU] <= dag.nodes[id].cost[DEV_ACC] {
                        DEV_CPU
                    } else {
                        DEV_ACC
                    };
                    state.eft(id, dev)
                }
                ResourceCriterion::Balanced => {
                    let dev = if state.busy(DEV_CPU) <= state.busy(DEV_ACC) {
                        DEV_CPU
                    } else {
                        DEV_ACC
                    };
                    state.eft(id, dev)
                }
            };
            state.commit(id, cand);
            done += 1;
            for &s in &dag.succs[id] {
                unplaced_preds[s] -= 1;
                if unplaced_preds[s] == 0 {
                    ready.push(s);
                }
            }
        }
        state.into_schedule()
    }
}
