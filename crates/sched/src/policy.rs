//! The [`SchedulerPolicy`] trait and the string-keyed policy registry.
//!
//! Policy names follow a `name[key=value,...]` grammar (see the crate-level
//! docs); [`resolve`] parses a name into a boxed policy and [`registered`]
//! enumerates the canonical set used by the comparison experiments.

use crate::dag::TaskDag;
use crate::list::{Cpop, DynamicList, Heft, Lookahead, ResourceCriterion, TaskCriterion};
use crate::paper::{AccOnly, CpuOnly, KernelLevel, PatternDriven, Serial};
use crate::platform::Platform;
use crate::schedule::Schedule;

/// A scheduling policy: maps a task DAG onto the platform's devices.
///
/// Implementations must place every node of the DAG and must respect the
/// dependency edges (no node starts before its predecessors finish and any
/// required staging transfer completes).
pub trait SchedulerPolicy {
    /// Canonical registry name, including parameters (e.g.
    /// `"lookahead[depth=2]"`). Resolving this name yields an equivalent
    /// policy.
    fn name(&self) -> String;

    /// Whether the policy places work on the accelerator. Multi-rank halo
    /// accounting charges the PCIe staging surcharge only when true.
    fn uses_accelerator(&self) -> bool {
        true
    }

    /// Schedule one substep DAG onto the platform.
    fn schedule(&self, dag: &TaskDag, platform: &Platform) -> Schedule;
}

impl<T: SchedulerPolicy + ?Sized> SchedulerPolicy for &T {
    fn name(&self) -> String {
        (**self).name()
    }

    fn uses_accelerator(&self) -> bool {
        (**self).uses_accelerator()
    }

    fn schedule(&self, dag: &TaskDag, platform: &Platform) -> Schedule {
        (**self).schedule(dag, platform)
    }
}

impl<T: SchedulerPolicy + ?Sized> SchedulerPolicy for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn uses_accelerator(&self) -> bool {
        (**self).uses_accelerator()
    }

    fn schedule(&self, dag: &TaskDag, platform: &Platform) -> Schedule {
        (**self).schedule(dag, platform)
    }
}

/// A parsed policy spec: the base name plus its `k=v` parameter pairs.
type ParsedSpec<'a> = (&'a str, Vec<(&'a str, &'a str)>);

/// Split `"name[k=v,...]"` into the base name and its key/value pairs.
fn parse_name(spec: &str) -> Result<ParsedSpec<'_>, String> {
    let spec = spec.trim();
    let Some(open) = spec.find('[') else {
        return Ok((spec, Vec::new()));
    };
    let base = &spec[..open];
    let rest = &spec[open + 1..];
    let Some(inner) = rest.strip_suffix(']') else {
        return Err(format!("unterminated '[' in policy name {spec:?}"));
    };
    let mut params = Vec::new();
    for kv in inner.split(',').filter(|s| !s.trim().is_empty()) {
        let (k, v) = kv
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got {kv:?} in {spec:?}"))?;
        params.push((k.trim(), v.trim()));
    }
    Ok((base, params))
}

fn no_params(base: &str, params: &[(&str, &str)]) -> Result<(), String> {
    if params.is_empty() {
        Ok(())
    } else {
        Err(format!("policy {base:?} takes no parameters"))
    }
}

/// Resolve a policy name (see the crate-level grammar) into a policy.
///
/// Unknown names, unknown parameter keys, and malformed values are errors
/// listing what was expected.
pub fn resolve(spec: &str) -> Result<Box<dyn SchedulerPolicy>, String> {
    let (base, params) = parse_name(spec)?;
    match base {
        "serial" => {
            no_params(base, &params)?;
            Ok(Box::new(Serial))
        }
        "cpu-only" => {
            no_params(base, &params)?;
            Ok(Box::new(CpuOnly))
        }
        "acc-only" => {
            no_params(base, &params)?;
            Ok(Box::new(AccOnly))
        }
        "kernel-level" => {
            no_params(base, &params)?;
            Ok(Box::new(KernelLevel))
        }
        "pattern-driven" => {
            let mut policy = PatternDriven::default();
            for (k, v) in params {
                match k {
                    "overlap" => {
                        policy.overlap_transfers = v
                            .parse::<bool>()
                            .map_err(|_| format!("overlap must be true/false, got {v:?}"))?;
                    }
                    _ => return Err(format!("unknown pattern-driven parameter {k:?}")),
                }
            }
            Ok(Box::new(policy))
        }
        "heft" => {
            no_params(base, &params)?;
            Ok(Box::new(Heft))
        }
        "cpop" => {
            no_params(base, &params)?;
            Ok(Box::new(Cpop))
        }
        "lookahead" => {
            let mut policy = Lookahead::default();
            for (k, v) in params {
                match k {
                    "depth" => {
                        let d = v
                            .parse::<usize>()
                            .map_err(|_| format!("depth must be an integer, got {v:?}"))?;
                        if d == 0 {
                            return Err("lookahead depth must be ≥ 1".into());
                        }
                        policy.depth = d;
                    }
                    _ => return Err(format!("unknown lookahead parameter {k:?}")),
                }
            }
            Ok(Box::new(policy))
        }
        "dynamic-list" => {
            let mut policy = DynamicList::default();
            for (k, v) in params {
                match k {
                    "task" => {
                        policy.task = match v {
                            "comp" => TaskCriterion::Comp,
                            "rank" => TaskCriterion::Rank,
                            "bytes" => TaskCriterion::Bytes,
                            "order" => TaskCriterion::Order,
                            _ => {
                                return Err(format!(
                                    "task must be comp|rank|bytes|order, got {v:?}"
                                ))
                            }
                        };
                    }
                    "resource" => {
                        policy.resource = match v {
                            "eft" => ResourceCriterion::Eft,
                            "fastest" => ResourceCriterion::Fastest,
                            "balanced" => ResourceCriterion::Balanced,
                            _ => {
                                return Err(format!(
                                    "resource must be eft|fastest|balanced, got {v:?}"
                                ))
                            }
                        };
                    }
                    _ => return Err(format!("unknown dynamic-list parameter {k:?}")),
                }
            }
            Ok(Box::new(policy))
        }
        other => Err(format!(
            "unknown policy {other:?}; registered: {}",
            registered_names().join(", ")
        )),
    }
}

/// Canonical policy names covering every registered family (parameterized
/// families appear with their default parameters spelled out).
pub fn registered_names() -> Vec<&'static str> {
    vec![
        "serial",
        "cpu-only",
        "acc-only",
        "kernel-level",
        "pattern-driven",
        "heft",
        "cpop",
        "lookahead[depth=2]",
        "dynamic-list[task=rank,resource=eft]",
    ]
}

/// One instance of every registered policy family, with defaults.
pub fn registered() -> Vec<Box<dyn SchedulerPolicy>> {
    registered_names()
        .into_iter()
        .map(|n| resolve(n).expect("registered names resolve"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_names_round_trip() {
        for name in registered_names() {
            let p = resolve(name).unwrap();
            assert_eq!(p.name(), name, "resolve/name must round-trip");
        }
    }

    #[test]
    fn parameterized_names_parse() {
        assert_eq!(
            resolve("lookahead[depth=4]").unwrap().name(),
            "lookahead[depth=4]"
        );
        assert_eq!(
            resolve("dynamic-list[task=comp,resource=fastest]")
                .unwrap()
                .name(),
            "dynamic-list[task=comp,resource=fastest]"
        );
        assert_eq!(resolve(" lookahead ").unwrap().name(), "lookahead[depth=2]");
        assert_eq!(
            resolve("pattern-driven[overlap=true]").unwrap().name(),
            "pattern-driven"
        );
    }

    #[test]
    fn bad_names_error_helpfully() {
        let err = |spec: &str| resolve(spec).err().expect("should be rejected");
        assert!(err("peft").contains("registered"));
        assert!(err("lookahead[depth=x]").contains("integer"));
        assert!(resolve("lookahead[depth=0]").is_err());
        assert!(err("lookahead[deep=2]").contains("unknown"));
        assert!(err("heft[depth=2]").contains("no parameters"));
        assert!(resolve("dynamic-list[task=zzz]").is_err());
        assert!(err("lookahead[depth=2").contains("unterminated"));
    }

    #[test]
    fn serial_and_cpu_only_do_not_use_the_accelerator() {
        assert!(!resolve("serial").unwrap().uses_accelerator());
        assert!(!resolve("cpu-only").unwrap().uses_accelerator());
        assert!(resolve("kernel-level").unwrap().uses_accelerator());
        assert!(resolve("heft").unwrap().uses_accelerator());
    }
}
