//! # mpas-sched — pluggable DAG scheduling policies for the hybrid node
//!
//! This crate turns the paper's closed set of scheduling strategies into an
//! open subsystem: the Table-I pattern instances of one RK substep are
//! extracted into a [`TaskDag`] (per-device costs, output bytes,
//! splittability), and any [`SchedulerPolicy`] maps that DAG onto the
//! two-device [`Platform`] producing a [`Schedule`] with makespan, per-node
//! placements, and busy times. The paper's own policies (serial,
//! kernel-level offload of Fig. 2, pattern-driven EFT-with-splits of
//! Fig. 4 (b)) live in [`paper`]; the classic heterogeneous list schedulers
//! (HEFT, CPOP, depth-bounded lookahead, parameterized dynamic-list) live
//! in [`list`]. All policies share one device/transfer/residency model, so
//! their makespans are directly comparable.
//!
//! ## Policy-name grammar
//!
//! Policies are resolved from strings by [`resolve`]:
//!
//! ```text
//! spec   := name | name "[" param ("," param)* "]"
//! param  := key "=" value
//! ```
//!
//! Registered names and their parameters:
//!
//! | name | parameters |
//! |------|------------|
//! | `serial` | — |
//! | `cpu-only` | — |
//! | `acc-only` | — |
//! | `kernel-level` | — |
//! | `pattern-driven` | `overlap=true\|false` (default `false`) |
//! | `heft` | — |
//! | `cpop` | — |
//! | `lookahead` | `depth=N` (default `2`, N ≥ 1) |
//! | `dynamic-list` | `task=comp\|rank\|bytes\|order` (default `rank`), `resource=eft\|fastest\|balanced` (default `eft`) |
//!
//! Examples: `lookahead[depth=4]`, `dynamic-list[task=comp,resource=eft]`.
//!
//! ## Cost calibration
//!
//! [`TaskDag::from_dataflow_with`] accepts any [`CostModel`]. The default
//! [`RooflineCost`] evaluates the Table-II roofline; a [`CalibratedCost`]
//! rescales it with per-pattern `measured / predicted` coefficients fitted
//! by timing the real host executors (`mpas_hybrid::calibrate`), replacing
//! pure paper constants with measurements from the machine at hand.

pub mod dag;
pub mod list;
pub mod paper;
pub mod platform;
pub mod policy;
pub mod schedule;
pub mod telemetry;

pub use dag::{
    CalibratedCost, CostModel, DagOptions, RooflineCost, TaskDag, TaskNode,
    DEFAULT_SPLIT_THRESHOLD, DEV_ACC, DEV_CPU,
};
pub use list::{Cpop, DynamicList, Heft, Lookahead, ResourceCriterion, TaskCriterion};
pub use paper::{AccOnly, CpuOnly, KernelLevel, PatternDriven, Serial};
pub use platform::{DeviceSpec, Platform, TransferLink};
pub use policy::{registered, registered_names, resolve, SchedulerPolicy};
pub use schedule::{Candidate, ListState, NodeSchedule, Placement, Residency, Schedule};
pub use telemetry::record_schedule;
