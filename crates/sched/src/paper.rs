//! The paper's own policies, ported onto the [`TaskDag`] view.
//!
//! * [`Serial`] — every pattern on one CPU core, in program order (the
//!   "original CPU code").
//! * [`CpuOnly`] / [`AccOnly`] — whole-device single-target schedules
//!   (§II.C's strawmen).
//! * [`KernelLevel`] (Fig. 2) — whole kernels are the scheduling unit with
//!   the paper's static device map; coarse load balance.
//! * [`PatternDriven`] (Fig. 4 (b)) — per-instance earliest-finish-time
//!   with adjustable splits that equalize device finish times.
//!
//! The algorithms are numerically identical to the original closed-enum
//! implementation in `mpas_hybrid::sched`; its tests still run against
//! these code paths through the compatibility shim.

use crate::dag::{TaskDag, DEV_ACC, DEV_CPU};
use crate::platform::Platform;
use crate::policy::SchedulerPolicy;
use crate::schedule::{NodeSchedule, Placement, Residency, Schedule};
use mpas_patterns::dataflow::Kernel;
use std::collections::HashMap;

/// The original single-core CPU code, in program order.
#[derive(Debug, Clone, Copy, Default)]
pub struct Serial;

impl SchedulerPolicy for Serial {
    fn name(&self) -> String {
        "serial".into()
    }

    fn uses_accelerator(&self) -> bool {
        false
    }

    fn schedule(&self, dag: &TaskDag, _platform: &Platform) -> Schedule {
        let mut t = 0.0;
        let mut nodes = Vec::with_capacity(dag.len());
        for n in &dag.nodes {
            nodes.push(NodeSchedule {
                name: n.name,
                placement: Placement::Cpu,
                start: t,
                finish: t + n.serial_cost,
            });
            t += n.serial_cost;
        }
        Schedule {
            makespan: t,
            nodes,
            cpu_busy: t,
            acc_busy: 0.0,
        }
    }
}

/// All kernels on the full multi-core host, in program order.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuOnly;

/// Offload everything to the accelerator (§II.C's first option).
#[derive(Debug, Clone, Copy, Default)]
pub struct AccOnly;

fn single_device(dag: &TaskDag, dev: usize) -> Schedule {
    let mut t = 0.0;
    let mut nodes = Vec::with_capacity(dag.len());
    for n in &dag.nodes {
        let dt = n.cost[dev];
        nodes.push(NodeSchedule {
            name: n.name,
            placement: if dev == DEV_CPU {
                Placement::Cpu
            } else {
                Placement::Acc
            },
            start: t,
            finish: t + dt,
        });
        t += dt;
    }
    let (cpu_busy, acc_busy) = if dev == DEV_CPU { (t, 0.0) } else { (0.0, t) };
    Schedule {
        makespan: t,
        nodes,
        cpu_busy,
        acc_busy,
    }
}

impl SchedulerPolicy for CpuOnly {
    fn name(&self) -> String {
        "cpu-only".into()
    }

    fn uses_accelerator(&self) -> bool {
        false
    }

    fn schedule(&self, dag: &TaskDag, _platform: &Platform) -> Schedule {
        single_device(dag, DEV_CPU)
    }
}

impl SchedulerPolicy for AccOnly {
    fn name(&self) -> String {
        "acc-only".into()
    }

    fn schedule(&self, dag: &TaskDag, _platform: &Platform) -> Schedule {
        single_device(dag, DEV_ACC)
    }
}

/// Static kernel→device map of the paper's Fig. 2: the heavy kernels live
/// on the accelerator; `accumulative_update` (independent of the
/// diagnostics) and the output-only `mpas_reconstruct` overlap on the CPU.
pub fn kernel_level_device(kernel: Kernel) -> usize {
    match kernel {
        Kernel::AccumulativeUpdate | Kernel::MpasReconstruct => DEV_CPU,
        _ => DEV_ACC,
    }
}

/// Whole-kernel hybrid scheduling (Fig. 2).
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelLevel;

impl SchedulerPolicy for KernelLevel {
    fn name(&self) -> String {
        "kernel-level".into()
    }

    fn schedule(&self, dag: &TaskDag, platform: &Platform) -> Schedule {
        // Group node ids by kernel, preserving program order of first touch.
        let mut kernel_order: Vec<Kernel> = Vec::new();
        let mut groups: HashMap<Kernel, Vec<usize>> = HashMap::new();
        for (id, n) in dag.nodes.iter().enumerate() {
            if !groups.contains_key(&n.kernel) {
                kernel_order.push(n.kernel);
            }
            groups.entry(n.kernel).or_default().push(id);
        }

        let mut avail = [0.0f64; 2];
        let mut link_avail = 0.0f64;
        let mut node_finish = vec![0.0f64; dag.len()];
        let mut res = Residency::fresh();
        let mut out_nodes: Vec<Option<NodeSchedule>> = vec![None; dag.len()];
        let mut busy = [0.0f64; 2];

        for kernel in kernel_order {
            let ids = &groups[&kernel];
            // Dependency-ready time of the whole kernel.
            let ready = ids
                .iter()
                .flat_map(|&id| dag.preds[id].iter())
                .map(|&p| node_finish[p])
                .fold(0.0f64, f64::max);
            let dev_idx = kernel_level_device(kernel);
            let mut xfer_bytes = 0.0;
            for &id in ids {
                for &v in &dag.nodes[id].inputs {
                    if !res.present(v, dev_idx == DEV_ACC) {
                        xfer_bytes += dag.var_bytes[&v];
                    }
                }
            }
            let xfer_time = if xfer_bytes > 0.0 {
                platform.link.time(xfer_bytes)
            } else {
                0.0
            };
            let start =
                ready
                    .max(avail[dev_idx])
                    .max(if xfer_bytes > 0.0 { link_avail } else { 0.0 })
                    + xfer_time;
            let exec: f64 = ids.iter().map(|&id| dag.nodes[id].cost[dev_idx]).sum();
            let finish = start + exec;
            if xfer_time > 0.0 {
                link_avail = start; // link busy until kernel start
                for &id in ids {
                    let inputs = dag.nodes[id].inputs.clone();
                    for v in inputs {
                        if !res.present(v, dev_idx == DEV_ACC) {
                            res.mark_everywhere(v);
                        }
                    }
                }
            }
            avail[dev_idx] = finish;
            busy[dev_idx] += finish - start;
            // Lay nodes back-to-back inside the kernel for reporting.
            let mut t = start;
            for &id in ids {
                let dt = dag.nodes[id].cost[dev_idx];
                node_finish[id] = t + dt;
                let placement = if dev_idx == DEV_CPU {
                    Placement::Cpu
                } else {
                    Placement::Acc
                };
                out_nodes[id] = Some(NodeSchedule {
                    name: dag.nodes[id].name,
                    placement,
                    start: t,
                    finish: t + dt,
                });
                for &v in &dag.nodes[id].outputs {
                    res.write(v, placement);
                }
                t += dt;
            }
        }

        let makespan = avail[0].max(avail[1]);
        Schedule {
            makespan,
            nodes: out_nodes.into_iter().map(Option::unwrap).collect(),
            cpu_busy: busy[0],
            acc_busy: busy[1],
        }
    }
}

/// Pattern-instance hybrid scheduling with adjustable splits (Fig. 4 (b)).
#[derive(Debug, Clone, Copy, Default)]
pub struct PatternDriven {
    /// Overlap host↔device transfers with unrelated device work (the
    /// paper's "overlapped data moving"); when false, a transfer delays
    /// its consumer's start additively. Blocking is the default: it is
    /// what the Table-II/Fig.-7 calibration was fitted against.
    pub overlap_transfers: bool,
}

impl SchedulerPolicy for PatternDriven {
    fn name(&self) -> String {
        "pattern-driven".into()
    }

    fn schedule(&self, dag: &TaskDag, platform: &Platform) -> Schedule {
        let mut avail = [0.0f64; 2];
        let mut link_avail = 0.0f64;
        let mut node_finish = vec![0.0f64; dag.len()];
        let mut res = Residency::fresh();
        let mut out_nodes = Vec::with_capacity(dag.len());
        let mut busy = [0.0f64; 2];

        let finalize = |out_nodes: &mut Vec<NodeSchedule>,
                        node_finish: &mut [f64],
                        res: &mut Residency,
                        dag: &TaskDag,
                        id: usize,
                        (placement, start, finish): (Placement, f64, f64)| {
            node_finish[id] = finish;
            for &v in &dag.nodes[id].outputs {
                res.write(v, placement);
            }
            out_nodes.push(NodeSchedule {
                name: dag.nodes[id].name,
                placement,
                start,
                finish,
            });
        };

        for (id, node) in dag.nodes.iter().enumerate() {
            let ready = dag.preds[id]
                .iter()
                .map(|&p| node_finish[p])
                .fold(0.0f64, f64::max);

            // Earliest start on each device including any required transfer.
            let mut est = [0.0f64; 2];
            let mut xfer = [0.0f64; 2];
            for dev_idx in 0..2 {
                let mut xfer_bytes = 0.0;
                for &v in &node.inputs {
                    if !res.present(v, dev_idx == DEV_ACC) {
                        xfer_bytes += dag.var_bytes[&v];
                    }
                }
                xfer[dev_idx] = if xfer_bytes > 0.0 {
                    platform.link.time(xfer_bytes)
                } else {
                    0.0
                };
                est[dev_idx] = if xfer_bytes == 0.0 {
                    ready.max(avail[dev_idx])
                } else if self.overlap_transfers {
                    // The transfer starts as soon as the data and the link
                    // are free, hiding under the device's other work.
                    let xfer_done = ready.max(link_avail) + xfer[dev_idx];
                    ready.max(avail[dev_idx]).max(xfer_done)
                } else {
                    ready.max(avail[dev_idx]).max(link_avail) + xfer[dev_idx]
                };
            }
            let t_cpu = node.cost[DEV_CPU];
            let t_acc = node.cost[DEV_ACC];

            // Candidate A: whole-node EFT.
            let fin_cpu = est[0] + t_cpu;
            let fin_acc = est[1] + t_acc;

            // Candidate B: split so both devices finish together:
            //   est_a + f·A = est_c + (1−f)·C  ⇒  f = (est_c + C − est_a)/(A + C)
            let mut chosen: (Placement, f64, f64);
            if node.splittable {
                let a = t_acc - platform.acc.launch_overhead;
                let c = t_cpu - platform.cpu.launch_overhead;
                let f = ((est[0] + c - est[1]) / (a + c)).clamp(0.0, 1.0);
                if f > 0.02 && f < 0.98 {
                    let fin_split = (est[1] + platform.acc.launch_overhead + a * f)
                        .max(est[0] + platform.cpu.launch_overhead + c * (1.0 - f))
                        // Merge the two halves across the link.
                        + platform.link.time(node.out_bytes * 0.5);
                    if fin_split < fin_cpu.min(fin_acc) {
                        chosen = (Placement::Split(f), est[0].min(est[1]), fin_split);
                        // Both devices busy until the split finishes.
                        avail[0] = avail[0].max(fin_split);
                        avail[1] = avail[1].max(fin_split);
                        busy[0] += c * (1.0 - f) + platform.cpu.launch_overhead;
                        busy[1] += a * f + platform.acc.launch_overhead;
                        link_avail = fin_split;
                        finalize(&mut out_nodes, &mut node_finish, &mut res, dag, id, chosen);
                        continue;
                    }
                }
            }
            // Whole-node assignment.
            if fin_cpu <= fin_acc {
                chosen = (Placement::Cpu, est[0], fin_cpu);
                avail[0] = fin_cpu;
                busy[0] += t_cpu;
                if xfer[0] > 0.0 {
                    link_avail = est[0];
                    let inputs = node.inputs.clone();
                    for v in inputs {
                        if !res.present(v, false) {
                            res.mark_everywhere(v);
                        }
                    }
                }
            } else {
                chosen = (Placement::Acc, est[1], fin_acc);
                avail[1] = fin_acc;
                busy[1] += t_acc;
                if xfer[1] > 0.0 {
                    link_avail = est[1];
                    let inputs = node.inputs.clone();
                    for v in inputs {
                        if !res.present(v, true) {
                            res.mark_everywhere(v);
                        }
                    }
                }
            }
            chosen.1 = chosen.1.max(0.0);
            finalize(&mut out_nodes, &mut node_finish, &mut res, dag, id, chosen);
        }

        let makespan = avail[0].max(avail[1]);
        Schedule {
            makespan,
            nodes: out_nodes,
            cpu_busy: busy[0],
            acc_busy: busy[1],
        }
    }
}
