//! The task-DAG view the scheduling policies consume.
//!
//! [`TaskDag`] is extracted from a [`DataflowGraph`] for a concrete mesh
//! size and platform: every node carries its per-device execution cost, its
//! output bytes (what a cross-device consumer must move), and whether the
//! pattern-driven policy may split it across devices. Policies therefore
//! never re-derive costs — swap the [`CostModel`] at extraction time and
//! every registered policy schedules against the new coefficients.

use crate::platform::{DeviceSpec, Platform};
use mpas_patterns::dataflow::{DataflowGraph, Kernel, MeshCounts, PatternInstance};
use mpas_patterns::pattern::{PatternClass, Variable};
use std::collections::HashMap;

/// Device index of the host CPU in cost arrays and timelines.
pub const DEV_CPU: usize = 0;
/// Device index of the accelerator in cost arrays and timelines.
pub const DEV_ACC: usize = 1;

/// Share of substep bytes above which a node is "adjustable" (splittable).
pub const DEFAULT_SPLIT_THRESHOLD: f64 = 0.08;

/// Maps a pattern instance to an execution time on a device.
///
/// The default [`RooflineCost`] evaluates the Table-II roofline; a
/// [`CalibratedCost`] rescales it with per-pattern coefficients fitted from
/// measured executor timings (see `mpas_hybrid::calibrate`).
pub trait CostModel {
    /// Execution time of `node` run entirely on `dev`, seconds.
    fn node_cost(&self, node: &PatternInstance, mc: &MeshCounts, dev: &DeviceSpec) -> f64;
}

/// The pure Table-II roofline model: `max(flops/F, bytes/B) + launch`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RooflineCost;

impl CostModel for RooflineCost {
    fn node_cost(&self, node: &PatternInstance, mc: &MeshCounts, dev: &DeviceSpec) -> f64 {
        dev.node_time(node.work(mc))
    }
}

/// Roofline costs rescaled by measured per-pattern throughput coefficients.
///
/// A coefficient of `c` for pattern `"B1"` means the measured executor ran
/// `c`× slower (c > 1) or faster (c < 1) than the roofline predicted on the
/// reference device; unmeasured patterns fall back to the plain roofline.
#[derive(Debug, Clone, Default)]
pub struct CalibratedCost {
    /// Per-pattern `measured / predicted` time ratios, keyed by Table-I name.
    pub coeffs: HashMap<String, f64>,
}

impl CalibratedCost {
    /// Build from per-pattern coefficients.
    pub fn new(coeffs: HashMap<String, f64>) -> Self {
        CalibratedCost { coeffs }
    }
}

impl CostModel for CalibratedCost {
    fn node_cost(&self, node: &PatternInstance, mc: &MeshCounts, dev: &DeviceSpec) -> f64 {
        let c = self.coeffs.get(node.name).copied().unwrap_or(1.0);
        c * dev.node_time(node.work(mc))
    }
}

/// Options applied while extracting a [`TaskDag`].
#[derive(Debug, Clone, Copy)]
pub struct DagOptions {
    /// Fraction of substep bytes above which a non-local pattern may split.
    pub split_threshold: f64,
}

impl Default for DagOptions {
    fn default() -> Self {
        DagOptions {
            split_threshold: DEFAULT_SPLIT_THRESHOLD,
        }
    }
}

/// One schedulable task: a pattern instance annotated with everything a
/// policy needs to place it.
#[derive(Debug, Clone)]
pub struct TaskNode {
    /// Table-I pattern-instance label.
    pub name: &'static str,
    /// Algorithm-1 kernel the instance belongs to (kernel-level policy).
    pub kernel: Kernel,
    /// Stencil class (Fig. 3 letter).
    pub class: PatternClass,
    /// Execution time on `[cpu, acc]`, seconds, including launch overhead.
    pub cost: [f64; 2],
    /// Execution time on the single-core reference CPU, seconds.
    pub serial_cost: f64,
    /// Total bytes of the written fields (cross-device transfer size).
    pub out_bytes: f64,
    /// Model memory traffic of the node, bytes (splittability share).
    pub work_bytes: f64,
    /// Whether the pattern-driven policy may split this node across devices.
    pub splittable: bool,
    /// Variables read.
    pub inputs: Vec<Variable>,
    /// Variables written.
    pub outputs: Vec<Variable>,
}

/// A scheduling-ready task DAG for one RK substep at one mesh size.
#[derive(Debug, Clone)]
pub struct TaskDag {
    /// Tasks in Algorithm-1 program order (node id = index).
    pub nodes: Vec<TaskNode>,
    /// `preds[n]` = nodes that must complete before `n` starts.
    pub preds: Vec<Vec<usize>>,
    /// `succs[n]` = nodes unlocked by `n`.
    pub succs: Vec<Vec<usize>>,
    /// Bytes of one field of each variable touched by the graph.
    pub var_bytes: HashMap<Variable, f64>,
}

/// Bytes of one field of a variable at the given mesh size.
pub fn variable_bytes(v: Variable, mc: &MeshCounts) -> f64 {
    use mpas_patterns::pattern::MeshLocation::*;
    8.0 * match v.location() {
        Cell => mc.n_cells,
        Edge => mc.n_edges,
        Vertex => mc.n_vertices,
    }
}

impl TaskDag {
    /// Extract the scheduling view with the roofline cost model and the
    /// default split threshold.
    pub fn from_dataflow(graph: &DataflowGraph, mc: &MeshCounts, platform: &Platform) -> Self {
        Self::from_dataflow_with(graph, mc, platform, &RooflineCost, DagOptions::default())
    }

    /// Extract the scheduling view under an explicit cost model and options.
    pub fn from_dataflow_with(
        graph: &DataflowGraph,
        mc: &MeshCounts,
        platform: &Platform,
        cost: &dyn CostModel,
        opts: DagOptions,
    ) -> Self {
        let serial_core = DeviceSpec::cpu_single_core();
        let total_bytes: f64 = graph.nodes.iter().map(|n| n.work(mc).bytes).sum();
        let mut var_bytes = HashMap::new();
        let nodes = graph
            .nodes
            .iter()
            .map(|n| {
                for &v in n.inputs.iter().chain(&n.outputs) {
                    var_bytes.entry(v).or_insert_with(|| variable_bytes(v, mc));
                }
                let work_bytes = n.work(mc).bytes;
                TaskNode {
                    name: n.name,
                    kernel: n.kernel,
                    class: n.class,
                    cost: [
                        cost.node_cost(n, mc, &platform.cpu),
                        cost.node_cost(n, mc, &platform.acc),
                    ],
                    serial_cost: cost.node_cost(n, mc, &serial_core),
                    out_bytes: n.outputs.iter().map(|&v| variable_bytes(v, mc)).sum(),
                    work_bytes,
                    splittable: work_bytes / total_bytes > opts.split_threshold
                        && n.class != PatternClass::Local,
                    inputs: n.inputs.clone(),
                    outputs: n.outputs.clone(),
                }
            })
            .collect();
        TaskDag {
            nodes,
            preds: graph.preds.clone(),
            succs: graph.succs.clone(),
            var_bytes,
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the DAG has no tasks.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Mean (over the two devices) execution cost of each node — the `w̄`
    /// of the HEFT/CPOP literature.
    pub fn mean_costs(&self) -> Vec<f64> {
        self.nodes
            .iter()
            .map(|n| (n.cost[0] + n.cost[1]) / 2.0)
            .collect()
    }

    /// Mean communication cost charged to edge `producer → consumer`: the
    /// producer's output transfer halved (two devices — same-device
    /// placement, which costs nothing, happens half the time).
    pub fn mean_edge_comm(&self, producer: usize, platform: &Platform) -> f64 {
        0.5 * platform.link.time(self.nodes[producer].out_bytes)
    }

    /// Upward ranks: `rank_u(i) = w̄_i + max_{j ∈ succ(i)} (c̄_ij + rank_u(j))`.
    /// Scheduling in decreasing `rank_u` order is a topological order.
    pub fn upward_ranks(&self, platform: &Platform) -> Vec<f64> {
        let w = self.mean_costs();
        let mut rank = vec![0.0f64; self.len()];
        for i in (0..self.len()).rev() {
            let tail = self.succs[i]
                .iter()
                .map(|&j| self.mean_edge_comm(i, platform) + rank[j])
                .fold(0.0f64, f64::max);
            rank[i] = w[i] + tail;
        }
        rank
    }

    /// Downward ranks: `rank_d(i) = max_{p ∈ pred(i)} (rank_d(p) + w̄_p + c̄_pi)`.
    pub fn downward_ranks(&self, platform: &Platform) -> Vec<f64> {
        let w = self.mean_costs();
        let mut rank = vec![0.0f64; self.len()];
        for i in 0..self.len() {
            rank[i] = self.preds[i]
                .iter()
                .map(|&p| rank[p] + w[p] + self.mean_edge_comm(p, platform))
                .fold(0.0f64, f64::max);
        }
        rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpas_patterns::dataflow::RkPhase;

    fn dag() -> (TaskDag, Platform) {
        let p = Platform::paper_node();
        let g = DataflowGraph::for_substep(RkPhase::Intermediate);
        let mc = MeshCounts::icosahedral(655_362);
        (TaskDag::from_dataflow(&g, &mc, &p), p)
    }

    #[test]
    fn costs_match_the_roofline_model() {
        let p = Platform::paper_node();
        let g = DataflowGraph::for_substep(RkPhase::Intermediate);
        let mc = MeshCounts::icosahedral(655_362);
        let dag = TaskDag::from_dataflow(&g, &mc, &p);
        for (t, n) in dag.nodes.iter().zip(&g.nodes) {
            assert_eq!(t.cost[DEV_CPU], p.cpu.node_time(n.work(&mc)));
            assert_eq!(t.cost[DEV_ACC], p.acc.node_time(n.work(&mc)));
            assert_eq!(
                t.serial_cost,
                DeviceSpec::cpu_single_core().node_time(n.work(&mc))
            );
        }
    }

    #[test]
    fn splittability_follows_threshold_and_class() {
        let (dag, _) = dag();
        let b1 = dag.nodes.iter().find(|n| n.name == "B1").unwrap();
        assert!(b1.splittable, "the heaviest pattern must be adjustable");
        for n in &dag.nodes {
            if n.class == PatternClass::Local {
                assert!(!n.splittable, "{} is local", n.name);
            }
        }
        // Threshold above every share disables splitting entirely.
        let p = Platform::paper_node();
        let g = DataflowGraph::for_substep(RkPhase::Intermediate);
        let mc = MeshCounts::icosahedral(655_362);
        let none = TaskDag::from_dataflow_with(
            &g,
            &mc,
            &p,
            &RooflineCost,
            DagOptions {
                split_threshold: 1.1,
            },
        );
        assert!(none.nodes.iter().all(|n| !n.splittable));
    }

    #[test]
    fn upward_ranks_decrease_along_edges() {
        let (dag, p) = dag();
        let r = dag.upward_ranks(&p);
        for i in 0..dag.len() {
            for &j in &dag.succs[i] {
                assert!(r[i] > r[j], "rank must strictly decrease along edges");
            }
        }
    }

    #[test]
    fn downward_ranks_increase_along_edges() {
        let (dag, p) = dag();
        let r = dag.downward_ranks(&p);
        for i in 0..dag.len() {
            for &j in &dag.succs[i] {
                assert!(r[j] > r[i]);
            }
        }
    }

    #[test]
    fn calibrated_cost_rescales_only_named_patterns() {
        let p = Platform::paper_node();
        let g = DataflowGraph::for_substep(RkPhase::Intermediate);
        let mc = MeshCounts::icosahedral(40_962);
        let mut coeffs = HashMap::new();
        coeffs.insert("B1".to_string(), 2.0);
        let cal = CalibratedCost::new(coeffs);
        let plain = TaskDag::from_dataflow(&g, &mc, &p);
        let scaled = TaskDag::from_dataflow_with(&g, &mc, &p, &cal, DagOptions::default());
        for (a, b) in plain.nodes.iter().zip(&scaled.nodes) {
            if a.name == "B1" {
                assert!((b.cost[0] / a.cost[0] - 2.0).abs() < 1e-12);
            } else {
                assert_eq!(a.cost, b.cost);
            }
        }
    }
}
