//! Property tests of the policy registry: dominance relations and
//! structural validity over randomized mesh counts.
//!
//! On the fixed Table-II platform, every list scheduler must beat the
//! single-core serial reference (they can always fall back to the faster
//! multicore host), the pattern-driven policy must beat the kernel-level
//! static map it refines (Fig. 4 (b) vs Fig. 2), and no schedule may start
//! a node before its DAG predecessors finish.

use mpas_patterns::dataflow::{DataflowGraph, MeshCounts, RkPhase};
use mpas_sched::{resolve, Platform, SchedulerPolicy, TaskDag};
use proptest::prelude::*;

/// Randomized mesh counts: cell count spans the paper's Table III range
/// and beyond, with the edge/vertex ratios perturbed off the exact
/// icosahedral 3:2 to model partition remainders.
fn mesh_counts() -> impl Strategy<Value = MeshCounts> {
    (5_000usize..3_000_000, 2.8f64..3.2, 1.8f64..2.2).prop_map(|(n_cells, edge_mul, vert_mul)| {
        let c = n_cells as f64;
        MeshCounts {
            n_cells: c,
            n_edges: edge_mul * c,
            n_vertices: vert_mul * c,
        }
    })
}

fn substep(final_phase: bool) -> DataflowGraph {
    DataflowGraph::for_substep(if final_phase {
        RkPhase::Final
    } else {
        RkPhase::Intermediate
    })
}

/// The list schedulers under test, including parameterized variants.
const LIST_POLICIES: [&str; 8] = [
    "heft",
    "cpop",
    "lookahead[depth=1]",
    "lookahead[depth=3]",
    "dynamic-list[task=rank,resource=eft]",
    "dynamic-list[task=comp,resource=fastest]",
    "dynamic-list[task=bytes,resource=balanced]",
    "dynamic-list[task=order,resource=eft]",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every list scheduler beats the serial reference, and every schedule
    /// (list or paper policy) respects the DAG dependency edges.
    #[test]
    fn list_schedulers_dominate_serial_and_respect_deps(
        mc in mesh_counts(),
        final_phase in proptest::bool::ANY,
    ) {
        let g = substep(final_phase);
        let p = Platform::paper_node();
        let dag = TaskDag::from_dataflow(&g, &mc, &p);
        let serial = resolve("serial").unwrap().schedule(&dag, &p).makespan;
        prop_assert!(serial.is_finite() && serial > 0.0);
        for spec in LIST_POLICIES {
            let policy = resolve(spec).unwrap();
            let s = policy.schedule(&dag, &p);
            prop_assert!(
                s.makespan <= serial * (1.0 + 1e-12),
                "{spec}: {} > serial {}",
                s.makespan,
                serial
            );
            for (id, ns) in s.nodes.iter().enumerate() {
                prop_assert!(ns.finish >= ns.start - 1e-12, "{spec}: negative interval");
                for &pred in &dag.preds[id] {
                    prop_assert!(
                        s.nodes[pred].finish <= ns.start + 1e-9,
                        "{spec}: {} starts before {} finishes",
                        ns.name,
                        s.nodes[pred].name
                    );
                }
            }
        }
    }

    /// The pattern-driven refinement never loses to the kernel-level
    /// static map, on any mesh size.
    #[test]
    fn pattern_driven_dominates_kernel_level(
        mc in mesh_counts(),
        final_phase in proptest::bool::ANY,
    ) {
        let g = substep(final_phase);
        let p = Platform::paper_node();
        let dag = TaskDag::from_dataflow(&g, &mc, &p);
        let kernel = resolve("kernel-level").unwrap().schedule(&dag, &p);
        let pattern = resolve("pattern-driven").unwrap().schedule(&dag, &p);
        prop_assert!(
            pattern.makespan <= kernel.makespan * (1.0 + 1e-12),
            "pattern {} > kernel {}",
            pattern.makespan,
            kernel.makespan
        );
        // Both also respect dependencies.
        for s in [&kernel, &pattern] {
            for (id, ns) in s.nodes.iter().enumerate() {
                for &pred in &dag.preds[id] {
                    prop_assert!(s.nodes[pred].finish <= ns.start + 1e-9);
                }
            }
        }
    }
}
