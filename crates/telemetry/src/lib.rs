#![warn(missing_docs)]
//! Runtime telemetry core for the whole reproduction.
//!
//! The paper's argument rests on observability artifacts — the §II.C kernel
//! cost profile, the Fig. 4 timeline pictures, the Fig. 6–9 makespan
//! comparisons. This crate is the measurement layer those artifacts are
//! produced through at runtime:
//!
//! * [`Recorder`] — a cheaply-cloneable handle onto a shared recording
//!   buffer: hierarchical [spans](Recorder::span) (step → RK substep →
//!   kernel → pattern chunk, nesting tracked per thread), instantaneous
//!   [events](Recorder::event) with key/value arguments, and a typed
//!   metrics registry ([counters](Recorder::add),
//!   [gauges](Recorder::set_gauge), monotonic-clock
//!   [histograms](Recorder::record) summarized as p50/p95/max).
//! * [`Recorder::noop`] — the disabled recorder: every call is a single
//!   branch on an empty `Option`, no clock reads, no allocation, no locks,
//!   so instrumented code paths cost nothing when telemetry is off (the
//!   overhead-guard test in `crates/bench` asserts this).
//! * [`export`] — Chrome-trace (Perfetto) JSON with multiple track groups
//!   (so one `trace.json` carries both a *modeled* schedule and the
//!   *measured* execution), plus JSON and CSV metrics snapshots, and the
//!   shared JSON string escaper every exporter uses.
//! * the **live observability plane** (DESIGN.md §13): an always-on
//!   bounded [flight recorder](flight) dumped on demand or on an
//!   invariant alert, [rolling-window](window) aggregation registered
//!   per metric with [`Recorder::rolling_window`], and
//!   [scoped](Recorder::scoped) recorder views that prefix every name
//!   they record so one shared buffer can serve isolated per-job
//!   namespaces.
//!
//! Metric names follow the `crate.subsystem.name` scheme documented in
//! DESIGN.md §8 (e.g. `hybrid.kernel.B1.seconds`, `msg.halo.bytes_sent`,
//! `core.sim.step_seconds`).
//!
//! The crate is dependency-free and thread-safe: a [`Recorder`] can be
//! cloned into rayon pools and rank threads; all clones append to the same
//! buffers.

pub mod analysis;
pub mod diagnose;
pub mod digest;
pub mod export;
pub mod flight;
pub mod gate;
pub mod names;
pub mod store;
pub mod window;

pub use export::{json_escape, ChromeTrace};
pub use flight::{FlightEvent, DEFAULT_FLIGHT_CAPACITY};
pub use window::{RollingWindow, WindowSummary};

use flight::FlightRing;
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One completed span: a named interval on a track, with its nesting depth
/// at creation time (per thread).
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name (e.g. a Table-I pattern label or `"rk-substep"`).
    pub name: String,
    /// Track the span ran on (a trace-viewer row, e.g. `"cpu-pool"`).
    pub track: String,
    /// Start, seconds since the recorder's epoch.
    pub start_s: f64,
    /// Duration in seconds.
    pub dur_s: f64,
    /// Nesting depth on the creating thread (0 = top level).
    pub depth: usize,
}

/// One instantaneous event with key/value arguments (e.g. a scheduler
/// placement decision).
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// Event name (e.g. `"sched.decision"`).
    pub name: String,
    /// Timestamp, seconds since the recorder's epoch.
    pub ts_s: f64,
    /// Arbitrary key/value payload.
    pub args: Vec<(String, String)>,
}

/// Summary statistics of one histogram metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples (the gate sizes its noise bands by this).
    pub count: usize,
    /// Sum of all samples.
    pub sum: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// Largest sample.
    pub max: f64,
    /// Smallest sample.
    pub min: f64,
}

/// A point-in-time copy of every metric, ordered by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Rolling-window summaries (only metrics with a registered window).
    pub windows: BTreeMap<String, WindowSummary>,
}

impl MetricsSnapshot {
    /// Value of a counter, if it was ever incremented.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Last value written to a gauge, if any.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Summary of a histogram, if it has any samples.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }

    /// Summary of a rolling window, if one is registered for `name`.
    pub fn window(&self, name: &str) -> Option<&WindowSummary> {
        self.windows.get(name)
    }

    /// The snapshot restricted to metrics whose name starts with `prefix`
    /// (the `BTreeMap`s keep the keys stably sorted). With scoped
    /// recorders this slices the global snapshot into one namespace.
    pub fn filtered(&self, prefix: &str) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .filter(|(k, _)| k.starts_with(prefix))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(k, _)| k.starts_with(prefix))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(k, _)| k.starts_with(prefix))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            windows: self
                .windows
                .iter()
                .filter(|(k, _)| k.starts_with(prefix))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }
}

/// Word-at-a-time rotate-xor-multiply hash (the rustc-hash recipe).
/// Metric names are short internal keys, so SipHash's DoS resistance
/// buys nothing here, and a byte-at-a-time hash (e.g. FNV) is
/// latency-bound at ~4 cycles per byte — a measurable slice of the
/// per-write budget the overhead guard in `crates/bench` enforces.
#[derive(Default)]
struct MetricNameHasher(u64);

impl std::hash::Hasher for MetricNameHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        let mut h = self.0;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let w = u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes"));
            h = (h.rotate_left(5) ^ w).wrapping_mul(K);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut w = 0u64;
            for (i, &b) in rem.iter().enumerate() {
                w |= u64::from(b) << (8 * i);
            }
            h = (h.rotate_left(5) ^ w).wrapping_mul(K);
        }
        self.0 = h;
    }
}

type NameHashBuild = std::hash::BuildHasherDefault<MetricNameHasher>;

/// All state for one metric name behind a single map lookup: the hot path
/// (`add` / `set_gauge` / `record` / timer drops) pays one hash per write
/// — updating the store, feeding a registered rolling window, and pushing
/// a ring event that shares the interned name instead of re-allocating it.
struct MetricSlot {
    /// Interned name, shared with every [`FlightEvent`] this metric emits.
    name: Arc<str>,
    counter: Option<u64>,
    gauge: Option<f64>,
    /// Raw histogram samples (empty = never recorded as a histogram).
    samples: Vec<f64>,
    window: Option<RollingWindow>,
}

struct Buffers {
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    metrics: HashMap<Arc<str>, MetricSlot, NameHashBuild>,
    flight: FlightRing,
}

impl MetricSlot {
    fn new(name: Arc<str>) -> Self {
        MetricSlot {
            name,
            counter: None,
            gauge: None,
            samples: Vec::new(),
            window: None,
        }
    }
}

impl Buffers {
    fn new(flight_capacity: usize) -> Self {
        Buffers {
            spans: Vec::new(),
            events: Vec::new(),
            metrics: HashMap::default(),
            flight: FlightRing::new(flight_capacity),
        }
    }

    /// Run `f` on the slot for `name` (interned on first use) with the
    /// flight ring alongside, so `f` can push a ring event that shares
    /// the slot's interned name. The hit path pays exactly one hash;
    /// only a miss (first write to a new name) probes twice.
    #[inline]
    fn with_slot(&mut self, name: &str, f: impl FnOnce(&mut MetricSlot, &mut FlightRing)) {
        if let Some(slot) = self.metrics.get_mut(name) {
            f(slot, &mut self.flight);
            return;
        }
        let key: Arc<str> = Arc::from(name);
        self.metrics.insert(key.clone(), MetricSlot::new(key));
        let slot = self.metrics.get_mut(name).expect("slot just interned");
        f(slot, &mut self.flight);
    }
}

/// Dump-on-anomaly state: the armed path plus the set of alerted metrics
/// that already dumped (so each alert dumps exactly once).
#[derive(Default)]
struct DumpState {
    path: Option<PathBuf>,
    dumped: HashSet<String>,
}

struct Inner {
    epoch: Instant,
    buf: Mutex<Buffers>,
    dump: Mutex<DumpState>,
}

thread_local! {
    /// Per-thread span nesting depth (spans are strictly nested per thread
    /// by guard drop order).
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// A handle onto a shared telemetry buffer.
///
/// Cloning is an `Arc` clone; all clones record into the same buffers. The
/// [no-op recorder](Recorder::noop) (also the `Default`) carries no buffer
/// at all, so every recording call reduces to one branch.
///
/// A [scoped view](Recorder::scoped) shares the same buffers but prefixes
/// every metric, event and span-track name it records, so namespaces stay
/// isolated while aggregating globally.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
    /// Namespace prefix (ends with `.`), `None` on the root view.
    scope: Option<Arc<str>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.inner, &self.scope) {
            (None, _) => write!(f, "Recorder(noop)"),
            (Some(_), None) => write!(f, "Recorder(recording)"),
            (Some(_), Some(s)) => write!(f, "Recorder(recording, scope={s})"),
        }
    }
}

impl Recorder {
    /// A live recorder with its epoch at the call instant and the default
    /// flight-recorder capacity ([`DEFAULT_FLIGHT_CAPACITY`] events).
    pub fn new() -> Self {
        Recorder::with_flight_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// A live recorder whose flight ring keeps the most recent
    /// `flight_capacity` events (clamped to at least 1).
    pub fn with_flight_capacity(flight_capacity: usize) -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                buf: Mutex::new(Buffers::new(flight_capacity)),
                dump: Mutex::new(DumpState::default()),
            })),
            scope: None,
        }
    }

    /// The disabled recorder: records nothing, costs one branch per call.
    pub fn noop() -> Self {
        Recorder {
            inner: None,
            scope: None,
        }
    }

    /// A view onto the same buffers that records under the namespace
    /// `prefix` — every metric, event and span-track name gets `prefix.`
    /// prepended. Scopes nest (`scoped("job3").scoped("rk")` records
    /// under `job3.rk.`); a scoped view of a no-op recorder is a no-op.
    pub fn scoped(&self, prefix: &str) -> Recorder {
        if self.inner.is_none() {
            return Recorder::noop();
        }
        let scope: Arc<str> = match &self.scope {
            Some(s) => format!("{s}{prefix}.").into(),
            None => format!("{prefix}.").into(),
        };
        Recorder {
            inner: self.inner.clone(),
            scope: Some(scope),
        }
    }

    /// This view's namespace prefix (`""` on the root view), including the
    /// trailing `.` — the string to pass to
    /// [`MetricsSnapshot::filtered`] / [`flight::filter_prefix`].
    pub fn scope(&self) -> &str {
        self.scope.as_deref().unwrap_or("")
    }

    fn apply_scope(&self, name: &str) -> String {
        match &self.scope {
            Some(s) => format!("{s}{name}"),
            None => name.to_string(),
        }
    }

    /// Whether this recorder actually records. Use this to guard any
    /// telemetry work that allocates (e.g. building a metric name with
    /// `format!`) so the no-op path stays allocation-free.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Seconds elapsed since the recorder's epoch (0.0 on a no-op).
    pub fn now_s(&self) -> f64 {
        match &self.inner {
            Some(i) => i.epoch.elapsed().as_secs_f64(),
            None => 0.0,
        }
    }

    /// Open a span on `track`. The span closes (and is recorded) when the
    /// returned guard drops.
    pub fn span(&self, track: &str, name: &str) -> SpanGuard {
        self.span_inner(track, name, None, true)
    }

    /// Open a span that additionally records its duration into the
    /// histogram `metric` when it closes.
    pub fn span_timed(&self, track: &str, name: &str, metric: &str) -> SpanGuard {
        self.span_inner(track, name, Some(metric), true)
    }

    /// Time a scope into the histogram `metric` without emitting a span.
    pub fn time(&self, metric: &str) -> SpanGuard {
        self.span_inner("", metric, Some(metric), false)
    }

    fn span_inner(&self, track: &str, name: &str, metric: Option<&str>, emit: bool) -> SpanGuard {
        match &self.inner {
            None => SpanGuard::noop(),
            Some(inner) => {
                // Pure timers (`Recorder::time`) never become spans, so
                // they skip the nesting-depth bookkeeping and the
                // track/name strings — they are the hottest guard
                // (one per kernel per stage).
                let depth = if emit {
                    DEPTH.with(|d| {
                        let v = d.get();
                        d.set(v + 1);
                        v
                    })
                } else {
                    0
                };
                let metric = match (metric, &self.scope) {
                    (None, _) => GuardName::None,
                    (Some(m), Some(s)) => GuardName::Heap(format!("{s}{m}")),
                    (Some(m), None) => GuardName::new(m),
                };
                SpanGuard {
                    inner: Some(inner.clone()),
                    track: if emit {
                        self.apply_scope(track)
                    } else {
                        String::new()
                    },
                    name: if emit {
                        name.to_string()
                    } else {
                        String::new()
                    },
                    metric,
                    emit_span: emit,
                    depth,
                    start: Some(Instant::now()),
                }
            }
        }
    }

    /// Record an instantaneous event with key/value arguments.
    pub fn event(&self, name: &str, args: &[(&str, String)]) {
        if let Some(inner) = &self.inner {
            let ts_s = inner.epoch.elapsed().as_secs_f64();
            let record = EventRecord {
                name: self.apply_scope(name),
                ts_s,
                args: args
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            };
            let mut buf = inner.buf.lock().unwrap();
            buf.events.push(record.clone());
            buf.flight.push(FlightEvent::Instant(record));
        }
    }

    /// Add `delta` to the counter `name`.
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            let scoped;
            let name = match &self.scope {
                Some(s) => {
                    scoped = format!("{s}{name}");
                    scoped.as_str()
                }
                None => name,
            };
            let ts_s = inner.epoch.elapsed().as_secs_f64();
            let mut buf = inner.buf.lock().unwrap();
            buf.with_slot(name, |slot, ring| {
                *slot.counter.get_or_insert(0) += delta;
                // A windowed counter tracks its increments, so the
                // summary's rate is the counter's recent rate.
                if let Some(w) = &mut slot.window {
                    w.push(ts_s, delta as f64);
                }
                let name = slot.name.clone();
                ring.push(FlightEvent::Counter { name, delta, ts_s });
            });
        }
    }

    /// Set the gauge `name` to `value` (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            let scoped;
            let name = match &self.scope {
                Some(s) => {
                    scoped = format!("{s}{name}");
                    scoped.as_str()
                }
                None => name,
            };
            let ts_s = inner.epoch.elapsed().as_secs_f64();
            let mut buf = inner.buf.lock().unwrap();
            buf.with_slot(name, |slot, ring| {
                slot.gauge = Some(value);
                if let Some(w) = &mut slot.window {
                    w.push(ts_s, value);
                }
                let name = slot.name.clone();
                ring.push(FlightEvent::Gauge { name, value, ts_s });
            });
        }
    }

    /// Record one sample into the histogram `name`.
    pub fn record(&self, name: &str, sample: f64) {
        if let Some(inner) = &self.inner {
            let scoped;
            let name = match &self.scope {
                Some(s) => {
                    scoped = format!("{s}{name}");
                    scoped.as_str()
                }
                None => name,
            };
            let ts_s = inner.epoch.elapsed().as_secs_f64();
            let mut buf = inner.buf.lock().unwrap();
            buf.with_slot(name, |slot, ring| {
                slot.samples.push(sample);
                if let Some(w) = &mut slot.window {
                    w.push(ts_s, sample);
                }
                let name = slot.name.clone();
                ring.push(FlightEvent::Sample {
                    name,
                    value: sample,
                    ts_s,
                });
            });
        }
    }

    /// All completed spans, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(inner) => inner.buf.lock().unwrap().spans.clone(),
            None => Vec::new(),
        }
    }

    /// Spans completed since a previous cursor: `(new_cursor, spans)`
    /// where `spans` are everything recorded at index `from` and beyond.
    /// This is the incremental-ingest primitive behind
    /// [`analysis::LiveBlame`]: poll with the returned cursor and you see
    /// each span exactly once.
    pub fn spans_since(&self, from: usize) -> (usize, Vec<SpanRecord>) {
        match &self.inner {
            Some(inner) => {
                let buf = inner.buf.lock().unwrap();
                let new = buf.spans.get(from..).map(<[_]>::to_vec).unwrap_or_default();
                (buf.spans.len(), new)
            }
            None => (0, Vec::new()),
        }
    }

    /// Register a rolling window of `window_s` seconds on the metric
    /// `name` (scoped views register under their prefixed name). From
    /// then on every matching counter/gauge/histogram write also feeds
    /// the window; re-registering an existing window is a no-op.
    pub fn rolling_window(&self, name: &str, window_s: f64) {
        if let Some(inner) = &self.inner {
            let name = self.apply_scope(name);
            let mut buf = inner.buf.lock().unwrap();
            buf.with_slot(&name, |slot, _ring| {
                if slot.window.is_none() {
                    slot.window = Some(RollingWindow::new(window_s));
                }
            });
        }
    }

    /// Windowed summary of `name` as of now, if a window is registered.
    pub fn windowed(&self, name: &str) -> Option<WindowSummary> {
        let inner = self.inner.as_ref()?;
        let name = self.apply_scope(name);
        let now_s = inner.epoch.elapsed().as_secs_f64();
        let mut buf = inner.buf.lock().unwrap();
        buf.metrics
            .get_mut(name.as_str())
            .and_then(|s| s.window.as_mut())
            .map(|w| w.summary(now_s))
    }

    /// The flight-recorder ring contents, oldest first.
    pub fn flight_events(&self) -> Vec<FlightEvent> {
        match &self.inner {
            Some(inner) => inner.buf.lock().unwrap().flight.chronological(),
            None => Vec::new(),
        }
    }

    /// Events ever pushed through the flight ring (`total - len` have
    /// been overwritten).
    pub fn flight_total(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.buf.lock().unwrap().flight.total(),
            None => 0,
        }
    }

    /// The flight ring's current capacity (0 on a no-op recorder).
    pub fn flight_capacity(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.buf.lock().unwrap().flight.capacity(),
            None => 0,
        }
    }

    /// Resize the flight ring at runtime (no-op on a no-op recorder).
    ///
    /// The ring is rebuilt around the newest `capacity` events already
    /// held, so history survives a grow and a shrink keeps the most
    /// recent tail. This is what lets a server job request a deeper
    /// ring through its submission body instead of the capacity being
    /// fixed process-wide at recorder construction.
    pub fn set_flight_capacity(&self, capacity: usize) {
        if let Some(inner) = &self.inner {
            inner.buf.lock().unwrap().flight.set_capacity(capacity);
        }
    }

    /// Grow the flight ring to at least `capacity`, never shrinking.
    ///
    /// The server uses this form: its workers share one ring, so a job
    /// asking for less than another job already got must not drop the
    /// other job's history.
    pub fn ensure_flight_capacity(&self, capacity: usize) {
        if let Some(inner) = &self.inner {
            let mut buf = inner.buf.lock().unwrap();
            if capacity > buf.flight.capacity() {
                buf.flight.set_capacity(capacity);
            }
        }
    }

    /// Arm dump-on-anomaly: from now on, the first time each invariant
    /// metric trips in [`analysis::check_invariants`], the flight ring is
    /// written to `path` as a Chrome trace (see
    /// [`Recorder::flight_dump_on_alert`]).
    pub fn set_flight_dump(&self, path: impl Into<PathBuf>) {
        if let Some(inner) = &self.inner {
            inner.dump.lock().unwrap().path = Some(path.into());
        }
    }

    /// Write the current flight-ring contents to `path` as a Chrome
    /// trace, and count the write on [`names::FLIGHT_DUMPS`].
    pub fn flight_dump_to(&self, path: &Path) -> std::io::Result<()> {
        let trace = flight::to_chrome_trace(&self.flight_events());
        std::fs::write(path, trace)?;
        self.add(names::FLIGHT_DUMPS, 1);
        Ok(())
    }

    /// Dump-on-anomaly trigger: if a dump path is armed and `metric` has
    /// not alerted before, dump the flight ring there and return the
    /// path. Each metric dumps exactly once per recorder, so an invariant
    /// that stays tripped across repeated checks cannot spam the disk.
    /// Returns `None` when unarmed, already dumped, or the write failed
    /// (an alert path must never panic the run).
    pub fn flight_dump_on_alert(&self, metric: &str) -> Option<PathBuf> {
        let inner = self.inner.as_ref()?;
        let path = {
            let mut dump = inner.dump.lock().unwrap();
            let path = dump.path.clone()?;
            if !dump.dumped.insert(metric.to_string()) {
                return None;
            }
            path
        };
        self.flight_dump_to(&path).ok().map(|_| path)
    }

    /// All recorded events, in recording order.
    pub fn events(&self) -> Vec<EventRecord> {
        match &self.inner {
            Some(inner) => inner.buf.lock().unwrap().events.clone(),
            None => Vec::new(),
        }
    }

    /// Raw samples of the histogram `name`, in recording order (empty if
    /// the histogram was never written). The regression gate uses this to
    /// fit median + MAD noise bands, which a summary cannot provide.
    pub fn histogram_samples(&self, name: &str) -> Vec<f64> {
        match &self.inner {
            Some(inner) => inner
                .buf
                .lock()
                .unwrap()
                .metrics
                .get(name)
                .map(|s| s.samples.clone())
                .unwrap_or_default(),
            None => Vec::new(),
        }
    }

    /// Snapshot every metric (name-ordered; histograms summarized;
    /// rolling windows summarized as of now).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let now_s = inner.epoch.elapsed().as_secs_f64();
        let mut buf = inner.buf.lock().unwrap();
        let mut snap = MetricsSnapshot::default();
        for slot in buf.metrics.values_mut() {
            if let Some(c) = slot.counter {
                snap.counters.insert(slot.name.to_string(), c);
            }
            if let Some(g) = slot.gauge {
                snap.gauges.insert(slot.name.to_string(), g);
            }
            if !slot.samples.is_empty() {
                snap.histograms.insert(
                    slot.name.to_string(),
                    HistogramSummary::from_samples(&slot.samples),
                );
            }
            if let Some(w) = &mut slot.window {
                snap.windows.insert(slot.name.to_string(), w.summary(now_s));
            }
        }
        snap
    }
}

impl HistogramSummary {
    /// Summarize a non-empty sample set (nearest-rank percentiles).
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = sorted.len();
        let pick = |q: f64| -> f64 {
            if n == 0 {
                return 0.0;
            }
            let idx = ((n as f64 - 1.0) * q).round() as usize;
            sorted[idx.min(n - 1)]
        };
        let sum: f64 = sorted.iter().sum();
        HistogramSummary {
            count: n,
            sum,
            mean: if n == 0 { 0.0 } else { sum / n as f64 },
            p50: pick(0.50),
            p95: pick(0.95),
            max: sorted.last().copied().unwrap_or(0.0),
            min: sorted.first().copied().unwrap_or(0.0),
        }
    }
}

/// Longest metric name a [`SpanGuard`] stores without heap-allocating.
const INLINE_NAME_LEN: usize = 46;

/// Metric name carried by a [`SpanGuard`]. Timer guards are the hottest
/// telemetry hook (one per kernel per RK stage), so the common case — a
/// short, unscoped metric name — is copied into an inline buffer instead
/// of allocating on every guard creation; scoped or unusually long names
/// fall back to the heap.
enum GuardName {
    None,
    Inline { len: u8, buf: [u8; INLINE_NAME_LEN] },
    Heap(String),
}

impl GuardName {
    fn new(name: &str) -> GuardName {
        if name.len() <= INLINE_NAME_LEN {
            let mut buf = [0u8; INLINE_NAME_LEN];
            buf[..name.len()].copy_from_slice(name.as_bytes());
            GuardName::Inline {
                len: name.len() as u8,
                buf,
            }
        } else {
            GuardName::Heap(name.to_string())
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            GuardName::None => None,
            GuardName::Inline { len, buf } => {
                Some(std::str::from_utf8(&buf[..*len as usize]).expect("copied whole from a &str"))
            }
            GuardName::Heap(s) => Some(s.as_str()),
        }
    }
}

/// RAII guard for an open span or timer; records on drop.
///
/// Must be dropped on the thread that created it (span nesting depth is
/// tracked per thread).
pub struct SpanGuard {
    inner: Option<Arc<Inner>>,
    track: String,
    name: String,
    metric: GuardName,
    emit_span: bool,
    depth: usize,
    start: Option<Instant>,
}

impl SpanGuard {
    fn noop() -> Self {
        SpanGuard {
            inner: None,
            track: String::new(),
            name: String::new(),
            metric: GuardName::None,
            emit_span: false,
            depth: 0,
            start: None,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let (Some(inner), Some(start)) = (&self.inner, self.start) else {
            return;
        };
        if self.emit_span {
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        }
        let dur_s = start.elapsed().as_secs_f64();
        let start_s = start.duration_since(inner.epoch).as_secs_f64();
        let mut buf = inner.buf.lock().unwrap();
        if self.emit_span {
            let record = SpanRecord {
                name: std::mem::take(&mut self.name),
                track: std::mem::take(&mut self.track),
                start_s,
                dur_s,
                depth: self.depth,
            };
            buf.spans.push(record.clone());
            buf.flight.push(FlightEvent::Span(record));
        }
        if let Some(metric) = self.metric.as_str() {
            let end_s = start_s + dur_s;
            // Pure timers stay out of the flight ring: at one per kernel
            // per stage they would wash every other event out of a
            // fixed-capacity ring within a few dozen steps. Their samples
            // still land in the histogram and any registered window, and
            // `span_timed` guards ring as Span events above.
            buf.with_slot(metric, |slot, _ring| {
                slot.samples.push(dur_s);
                if let Some(w) = &mut slot.window {
                    w.push(end_s, dur_s);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_records_nothing_and_reports_disabled() {
        let rec = Recorder::noop();
        assert!(!rec.is_enabled());
        {
            let _s = rec.span("t", "a");
            let _t = rec.time("m");
            rec.add("c", 3);
            rec.set_gauge("g", 1.0);
            rec.record("h", 0.5);
            rec.event("e", &[("k", "v".to_string())]);
        }
        assert!(rec.spans().is_empty());
        assert!(rec.events().is_empty());
        let snap = rec.snapshot();
        assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
    }

    #[test]
    fn spans_nest_by_depth_and_contain_by_time() {
        let rec = Recorder::new();
        {
            let _step = rec.span("main", "step");
            {
                let _sub = rec.span("main", "substep");
                let _k = rec.span("main", "kernel");
            }
        }
        let spans = rec.spans();
        // Completion order: innermost first.
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "kernel");
        assert_eq!(spans[0].depth, 2);
        assert_eq!(spans[1].name, "substep");
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[2].name, "step");
        assert_eq!(spans[2].depth, 0);
        // Parent intervals contain children.
        let eps = 1e-9;
        assert!(spans[2].start_s <= spans[1].start_s + eps);
        assert!(spans[2].start_s + spans[2].dur_s + eps >= spans[1].start_s + spans[1].dur_s);
    }

    #[test]
    fn counters_gauges_histograms_snapshot() {
        let rec = Recorder::new();
        rec.add("msg.halo.bytes_sent", 100);
        rec.add("msg.halo.bytes_sent", 20);
        rec.set_gauge("core.sim.mass_drift", 1e-14);
        rec.set_gauge("core.sim.mass_drift", 2e-14);
        for v in [1.0, 2.0, 3.0, 4.0, 100.0] {
            rec.record("hybrid.kernel.B1.seconds", v);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.counters["msg.halo.bytes_sent"], 120);
        assert_eq!(snap.gauges["core.sim.mass_drift"], 2e-14);
        let h = snap.histograms["hybrid.kernel.B1.seconds"];
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 110.0);
        assert_eq!(h.p50, 3.0);
        assert_eq!(h.max, 100.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.p95, 100.0);
    }

    #[test]
    fn span_timed_feeds_the_histogram() {
        let rec = Recorder::new();
        {
            let _g = rec.span_timed("cpu", "B1", "hybrid.kernel.B1.seconds");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.histograms["hybrid.kernel.B1.seconds"].count, 1);
        assert_eq!(rec.spans().len(), 1);
        // `time` records the histogram but not a span.
        {
            let _g = rec.time("only.metric");
        }
        assert_eq!(rec.spans().len(), 1);
        assert_eq!(rec.snapshot().histograms["only.metric"].count, 1);
    }

    #[test]
    fn clones_share_one_buffer_across_threads() {
        let rec = Recorder::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = rec.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        r.add("n", 1);
                    }
                    let _g = r.span("worker", "chunk");
                });
            }
        });
        assert_eq!(rec.snapshot().counters["n"], 400);
        assert_eq!(rec.spans().len(), 4);
    }

    #[test]
    fn events_carry_args() {
        let rec = Recorder::new();
        rec.event(
            "sched.decision",
            &[
                ("task", "B1".to_string()),
                ("placement", "split(0.6)".to_string()),
            ],
        );
        let ev = rec.events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].name, "sched.decision");
        assert_eq!(ev[0].args[0], ("task".to_string(), "B1".to_string()));
    }

    #[test]
    fn histogram_summary_of_single_sample() {
        let h = HistogramSummary::from_samples(&[7.0]);
        assert_eq!(h.count, 1);
        assert_eq!(h.p50, 7.0);
        assert_eq!(h.p95, 7.0);
        assert_eq!(h.mean, 7.0);
    }

    #[test]
    fn scoped_views_prefix_names_and_share_buffers() {
        let rec = Recorder::new();
        let a = rec.scoped("job1");
        let b = rec.scoped("job2");
        assert_eq!(a.scope(), "job1.");
        assert_eq!(a.scoped("rk").scope(), "job1.rk.");
        a.add("core.sim.steps", 2);
        b.add("core.sim.steps", 5);
        a.set_gauge("drift", 1e-15);
        {
            let _s = a.span_timed("measured", "core.step", "core.sim.step_seconds");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.counters["job1.core.sim.steps"], 2);
        assert_eq!(snap.counters["job2.core.sim.steps"], 5);
        assert_eq!(snap.histograms["job1.core.sim.step_seconds"].count, 1);
        assert_eq!(rec.spans()[0].track, "job1.measured");
        // Filtering slices one namespace out with stable-sorted keys.
        let job1 = snap.filtered("job1.");
        assert_eq!(job1.counters.len(), 1);
        assert!(job1.counters.keys().all(|k| k.starts_with("job1.")));
        assert!(snap.filtered("job2.").gauges.is_empty());
    }

    #[test]
    fn scoped_view_of_noop_is_noop() {
        let rec = Recorder::noop().scoped("job1");
        assert!(!rec.is_enabled());
        rec.add("c", 1);
        assert!(rec.snapshot().counters.is_empty());
    }

    #[test]
    fn registered_windows_feed_from_all_metric_kinds() {
        let rec = Recorder::new();
        rec.rolling_window("h", 60.0);
        rec.rolling_window("g", 60.0);
        rec.rolling_window("c", 60.0);
        for v in [1.0, 2.0, 3.0] {
            rec.record("h", v);
        }
        rec.set_gauge("g", 42.0);
        rec.add("c", 7);
        let snap = rec.snapshot();
        assert_eq!(snap.windows["h"].count, 3);
        assert_eq!(snap.windows["h"].p50, 2.0);
        assert_eq!(snap.windows["g"].max, 42.0);
        assert_eq!(snap.windows["c"].sum, 7.0);
        assert_eq!(rec.windowed("h").unwrap().count, 3);
        assert!(rec.windowed("unregistered").is_none());
        // Unregistered metrics carry no window.
        rec.record("other", 1.0);
        assert!(!rec.snapshot().windows.contains_key("other"));
    }

    #[test]
    fn spans_since_is_an_exactly_once_cursor() {
        let rec = Recorder::new();
        {
            let _a = rec.span("t", "one");
        }
        let (cur, new) = rec.spans_since(0);
        assert_eq!((cur, new.len()), (1, 1));
        {
            let _b = rec.span("t", "two");
        }
        let (cur2, new2) = rec.spans_since(cur);
        assert_eq!((cur2, new2.len()), (2, 1));
        assert_eq!(new2[0].name, "two");
        assert!(rec.spans_since(cur2).1.is_empty());
    }

    #[test]
    fn flight_ring_is_always_on_and_bounded() {
        let rec = Recorder::with_flight_capacity(8);
        for _ in 0..20 {
            rec.add("c", 1);
        }
        assert_eq!(rec.flight_total(), 20);
        assert_eq!(rec.flight_events().len(), 8);
        assert_eq!(rec.flight_capacity(), 8);
        assert!(Recorder::noop().flight_events().is_empty());
    }
}
