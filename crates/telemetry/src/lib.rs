#![warn(missing_docs)]
//! Runtime telemetry core for the whole reproduction.
//!
//! The paper's argument rests on observability artifacts — the §II.C kernel
//! cost profile, the Fig. 4 timeline pictures, the Fig. 6–9 makespan
//! comparisons. This crate is the measurement layer those artifacts are
//! produced through at runtime:
//!
//! * [`Recorder`] — a cheaply-cloneable handle onto a shared recording
//!   buffer: hierarchical [spans](Recorder::span) (step → RK substep →
//!   kernel → pattern chunk, nesting tracked per thread), instantaneous
//!   [events](Recorder::event) with key/value arguments, and a typed
//!   metrics registry ([counters](Recorder::add),
//!   [gauges](Recorder::set_gauge), monotonic-clock
//!   [histograms](Recorder::record) summarized as p50/p95/max).
//! * [`Recorder::noop`] — the disabled recorder: every call is a single
//!   branch on an empty `Option`, no clock reads, no allocation, no locks,
//!   so instrumented code paths cost nothing when telemetry is off (the
//!   overhead-guard test in `crates/bench` asserts this).
//! * [`export`] — Chrome-trace (Perfetto) JSON with multiple track groups
//!   (so one `trace.json` carries both a *modeled* schedule and the
//!   *measured* execution), plus JSON and CSV metrics snapshots, and the
//!   shared JSON string escaper every exporter uses.
//!
//! Metric names follow the `crate.subsystem.name` scheme documented in
//! DESIGN.md §8 (e.g. `hybrid.kernel.B1.seconds`, `msg.halo.bytes_sent`,
//! `core.sim.step_seconds`).
//!
//! The crate is dependency-free and thread-safe: a [`Recorder`] can be
//! cloned into rayon pools and rank threads; all clones append to the same
//! buffers.

pub mod analysis;
pub mod export;
pub mod gate;
pub mod names;

pub use export::{json_escape, ChromeTrace};

use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One completed span: a named interval on a track, with its nesting depth
/// at creation time (per thread).
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name (e.g. a Table-I pattern label or `"rk-substep"`).
    pub name: String,
    /// Track the span ran on (a trace-viewer row, e.g. `"cpu-pool"`).
    pub track: String,
    /// Start, seconds since the recorder's epoch.
    pub start_s: f64,
    /// Duration in seconds.
    pub dur_s: f64,
    /// Nesting depth on the creating thread (0 = top level).
    pub depth: usize,
}

/// One instantaneous event with key/value arguments (e.g. a scheduler
/// placement decision).
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// Event name (e.g. `"sched.decision"`).
    pub name: String,
    /// Timestamp, seconds since the recorder's epoch.
    pub ts_s: f64,
    /// Arbitrary key/value payload.
    pub args: Vec<(String, String)>,
}

/// Summary statistics of one histogram metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples (the gate sizes its noise bands by this).
    pub count: usize,
    /// Sum of all samples.
    pub sum: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// Largest sample.
    pub max: f64,
    /// Smallest sample.
    pub min: f64,
}

/// A point-in-time copy of every metric, ordered by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// Value of a counter, if it was ever incremented.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Last value written to a gauge, if any.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Summary of a histogram, if it has any samples.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }
}

#[derive(Default)]
struct Buffers {
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    counters: HashMap<String, u64>,
    gauges: HashMap<String, f64>,
    histograms: HashMap<String, Vec<f64>>,
}

struct Inner {
    epoch: Instant,
    buf: Mutex<Buffers>,
}

thread_local! {
    /// Per-thread span nesting depth (spans are strictly nested per thread
    /// by guard drop order).
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// A handle onto a shared telemetry buffer.
///
/// Cloning is an `Arc` clone; all clones record into the same buffers. The
/// [no-op recorder](Recorder::noop) (also the `Default`) carries no buffer
/// at all, so every recording call reduces to one branch.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Recorder({})",
            if self.inner.is_some() {
                "recording"
            } else {
                "noop"
            }
        )
    }
}

impl Recorder {
    /// A live recorder with its epoch at the call instant.
    pub fn new() -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                buf: Mutex::new(Buffers::default()),
            })),
        }
    }

    /// The disabled recorder: records nothing, costs one branch per call.
    pub fn noop() -> Self {
        Recorder { inner: None }
    }

    /// Whether this recorder actually records. Use this to guard any
    /// telemetry work that allocates (e.g. building a metric name with
    /// `format!`) so the no-op path stays allocation-free.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Seconds elapsed since the recorder's epoch (0.0 on a no-op).
    pub fn now_s(&self) -> f64 {
        match &self.inner {
            Some(i) => i.epoch.elapsed().as_secs_f64(),
            None => 0.0,
        }
    }

    /// Open a span on `track`. The span closes (and is recorded) when the
    /// returned guard drops.
    pub fn span(&self, track: &str, name: &str) -> SpanGuard {
        self.span_inner(track, name, None, true)
    }

    /// Open a span that additionally records its duration into the
    /// histogram `metric` when it closes.
    pub fn span_timed(&self, track: &str, name: &str, metric: &str) -> SpanGuard {
        self.span_inner(track, name, Some(metric), true)
    }

    /// Time a scope into the histogram `metric` without emitting a span.
    pub fn time(&self, metric: &str) -> SpanGuard {
        self.span_inner("", metric, Some(metric), false)
    }

    fn span_inner(&self, track: &str, name: &str, metric: Option<&str>, emit: bool) -> SpanGuard {
        match &self.inner {
            None => SpanGuard::noop(),
            Some(_) => {
                let depth = DEPTH.with(|d| {
                    let v = d.get();
                    d.set(v + 1);
                    v
                });
                SpanGuard {
                    rec: self.clone(),
                    track: track.to_string(),
                    name: name.to_string(),
                    metric: metric.map(|m| m.to_string()),
                    emit_span: emit,
                    depth,
                    start: Some(Instant::now()),
                }
            }
        }
    }

    /// Record an instantaneous event with key/value arguments.
    pub fn event(&self, name: &str, args: &[(&str, String)]) {
        if let Some(inner) = &self.inner {
            let ts_s = inner.epoch.elapsed().as_secs_f64();
            let mut buf = inner.buf.lock().unwrap();
            buf.events.push(EventRecord {
                name: name.to_string(),
                ts_s,
                args: args
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            });
        }
    }

    /// Add `delta` to the counter `name`.
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            let mut buf = inner.buf.lock().unwrap();
            match buf.counters.get_mut(name) {
                Some(c) => *c += delta,
                None => {
                    buf.counters.insert(name.to_string(), delta);
                }
            }
        }
    }

    /// Set the gauge `name` to `value` (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            let mut buf = inner.buf.lock().unwrap();
            match buf.gauges.get_mut(name) {
                Some(g) => *g = value,
                None => {
                    buf.gauges.insert(name.to_string(), value);
                }
            }
        }
    }

    /// Record one sample into the histogram `name`.
    pub fn record(&self, name: &str, sample: f64) {
        if let Some(inner) = &self.inner {
            let mut buf = inner.buf.lock().unwrap();
            match buf.histograms.get_mut(name) {
                Some(h) => h.push(sample),
                None => {
                    buf.histograms.insert(name.to_string(), vec![sample]);
                }
            }
        }
    }

    /// All completed spans, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(inner) => inner.buf.lock().unwrap().spans.clone(),
            None => Vec::new(),
        }
    }

    /// All recorded events, in recording order.
    pub fn events(&self) -> Vec<EventRecord> {
        match &self.inner {
            Some(inner) => inner.buf.lock().unwrap().events.clone(),
            None => Vec::new(),
        }
    }

    /// Raw samples of the histogram `name`, in recording order (empty if
    /// the histogram was never written). The regression gate uses this to
    /// fit median + MAD noise bands, which a summary cannot provide.
    pub fn histogram_samples(&self, name: &str) -> Vec<f64> {
        match &self.inner {
            Some(inner) => inner
                .buf
                .lock()
                .unwrap()
                .histograms
                .get(name)
                .cloned()
                .unwrap_or_default(),
            None => Vec::new(),
        }
    }

    /// Snapshot every metric (name-ordered; histograms summarized).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let buf = inner.buf.lock().unwrap();
        MetricsSnapshot {
            counters: buf.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: buf.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: buf
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), HistogramSummary::from_samples(v)))
                .collect(),
        }
    }
}

impl HistogramSummary {
    /// Summarize a non-empty sample set (nearest-rank percentiles).
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = sorted.len();
        let pick = |q: f64| -> f64 {
            if n == 0 {
                return 0.0;
            }
            let idx = ((n as f64 - 1.0) * q).round() as usize;
            sorted[idx.min(n - 1)]
        };
        let sum: f64 = sorted.iter().sum();
        HistogramSummary {
            count: n,
            sum,
            mean: if n == 0 { 0.0 } else { sum / n as f64 },
            p50: pick(0.50),
            p95: pick(0.95),
            max: sorted.last().copied().unwrap_or(0.0),
            min: sorted.first().copied().unwrap_or(0.0),
        }
    }
}

/// RAII guard for an open span or timer; records on drop.
///
/// Must be dropped on the thread that created it (span nesting depth is
/// tracked per thread).
pub struct SpanGuard {
    rec: Recorder,
    track: String,
    name: String,
    metric: Option<String>,
    emit_span: bool,
    depth: usize,
    start: Option<Instant>,
}

impl SpanGuard {
    fn noop() -> Self {
        SpanGuard {
            rec: Recorder::noop(),
            track: String::new(),
            name: String::new(),
            metric: None,
            emit_span: false,
            depth: 0,
            start: None,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let (Some(inner), Some(start)) = (&self.rec.inner, self.start) else {
            return;
        };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let dur_s = start.elapsed().as_secs_f64();
        let start_s = start.duration_since(inner.epoch).as_secs_f64();
        let mut buf = inner.buf.lock().unwrap();
        if self.emit_span {
            buf.spans.push(SpanRecord {
                name: std::mem::take(&mut self.name),
                track: std::mem::take(&mut self.track),
                start_s,
                dur_s,
                depth: self.depth,
            });
        }
        if let Some(metric) = self.metric.take() {
            match buf.histograms.get_mut(&metric) {
                Some(h) => h.push(dur_s),
                None => {
                    buf.histograms.insert(metric, vec![dur_s]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_records_nothing_and_reports_disabled() {
        let rec = Recorder::noop();
        assert!(!rec.is_enabled());
        {
            let _s = rec.span("t", "a");
            let _t = rec.time("m");
            rec.add("c", 3);
            rec.set_gauge("g", 1.0);
            rec.record("h", 0.5);
            rec.event("e", &[("k", "v".to_string())]);
        }
        assert!(rec.spans().is_empty());
        assert!(rec.events().is_empty());
        let snap = rec.snapshot();
        assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
    }

    #[test]
    fn spans_nest_by_depth_and_contain_by_time() {
        let rec = Recorder::new();
        {
            let _step = rec.span("main", "step");
            {
                let _sub = rec.span("main", "substep");
                let _k = rec.span("main", "kernel");
            }
        }
        let spans = rec.spans();
        // Completion order: innermost first.
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "kernel");
        assert_eq!(spans[0].depth, 2);
        assert_eq!(spans[1].name, "substep");
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[2].name, "step");
        assert_eq!(spans[2].depth, 0);
        // Parent intervals contain children.
        let eps = 1e-9;
        assert!(spans[2].start_s <= spans[1].start_s + eps);
        assert!(spans[2].start_s + spans[2].dur_s + eps >= spans[1].start_s + spans[1].dur_s);
    }

    #[test]
    fn counters_gauges_histograms_snapshot() {
        let rec = Recorder::new();
        rec.add("msg.halo.bytes_sent", 100);
        rec.add("msg.halo.bytes_sent", 20);
        rec.set_gauge("core.sim.mass_drift", 1e-14);
        rec.set_gauge("core.sim.mass_drift", 2e-14);
        for v in [1.0, 2.0, 3.0, 4.0, 100.0] {
            rec.record("hybrid.kernel.B1.seconds", v);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.counters["msg.halo.bytes_sent"], 120);
        assert_eq!(snap.gauges["core.sim.mass_drift"], 2e-14);
        let h = snap.histograms["hybrid.kernel.B1.seconds"];
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 110.0);
        assert_eq!(h.p50, 3.0);
        assert_eq!(h.max, 100.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.p95, 100.0);
    }

    #[test]
    fn span_timed_feeds_the_histogram() {
        let rec = Recorder::new();
        {
            let _g = rec.span_timed("cpu", "B1", "hybrid.kernel.B1.seconds");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.histograms["hybrid.kernel.B1.seconds"].count, 1);
        assert_eq!(rec.spans().len(), 1);
        // `time` records the histogram but not a span.
        {
            let _g = rec.time("only.metric");
        }
        assert_eq!(rec.spans().len(), 1);
        assert_eq!(rec.snapshot().histograms["only.metric"].count, 1);
    }

    #[test]
    fn clones_share_one_buffer_across_threads() {
        let rec = Recorder::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = rec.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        r.add("n", 1);
                    }
                    let _g = r.span("worker", "chunk");
                });
            }
        });
        assert_eq!(rec.snapshot().counters["n"], 400);
        assert_eq!(rec.spans().len(), 4);
    }

    #[test]
    fn events_carry_args() {
        let rec = Recorder::new();
        rec.event(
            "sched.decision",
            &[
                ("task", "B1".to_string()),
                ("placement", "split(0.6)".to_string()),
            ],
        );
        let ev = rec.events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].name, "sched.decision");
        assert_eq!(ev[0].args[0], ("task".to_string(), "B1".to_string()));
    }

    #[test]
    fn histogram_summary_of_single_sample() {
        let h = HistogramSummary::from_samples(&[7.0]);
        assert_eq!(h.count, 1);
        assert_eq!(h.p50, 7.0);
        assert_eq!(h.p95, 7.0);
        assert_eq!(h.mean, 7.0);
    }
}
