//! Trace analysis: happens-before reconstruction, critical-path
//! extraction, and per-rank blame decomposition.
//!
//! PR 2 made the runtime *record* spans and events; this module makes the
//! records *answer questions*. It reconstructs a happens-before DAG from
//! the per-rank span tracks and the rank-tagged send/recv edge events that
//! `mpas-msg::comm` emits, then extracts
//!
//! * the **critical path** through the run — a backward walk from the
//!   last-finishing rank that, at every blocked wait, jumps to the matched
//!   sender at the instant the message left (the classical MPI
//!   critical-path recipe), and
//! * a **per-rank blame report** — each rank's step time decomposed into
//!   compute / payload-copy / blocked-wait / barrier fractions, with an
//!   imbalance figure directly comparable to `Schedule::imbalance` in
//!   `mpas-sched`.
//!
//! Everything here is *total*: malformed traces (missing events, truncated
//! spans, unmatched messages) degrade the attribution, never panic. That
//! is a hard requirement for a tool that runs on whatever a crashed job
//! left behind.
//!
//! ## Trace conventions
//!
//! The instrumentation sites and this analyzer agree on names through the
//! constants below; `msg::comm`, `msg::halo` and `core::distributed`
//! import them rather than repeating string literals:
//!
//! * each rank records on track [`rank_track`]`(r)` = `"rank{r}"`;
//! * span names: [`STEP_SPAN`] (one per time step, the blame window),
//!   [`WAIT_SPAN`] (blocked in `recv`), [`COPY_SPAN`] (halo pack/unpack),
//!   [`BARRIER_SPAN`];
//! * events: [`SEND_EVENT`] / [`RECV_EVENT`] with `from`, `to`, `tag`,
//!   `bytes` arguments — the causal edges.
//!
//! Wait and copy spans are emitted *disjoint* (the receive completes
//! before the unpack span opens), so the blame fractions decompose without
//! double counting; compute is the residual, which makes the per-rank
//! fractions sum to 1 exactly.

use crate::{EventRecord, Recorder, SpanRecord};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Span name of a rank's per-step window (`core::distributed`).
pub const STEP_SPAN: &str = "step";
/// Span name of a blocked receive (`msg::comm::recv`).
pub const WAIT_SPAN: &str = "wait";
/// Span name of a halo payload pack/unpack (`msg::halo`).
pub const COPY_SPAN: &str = "copy";
/// Span name of a barrier (`msg::comm::barrier`).
pub const BARRIER_SPAN: &str = "barrier";
/// Event name of a message send; args `from`, `to`, `tag`, `bytes`.
pub const SEND_EVENT: &str = "msg.comm.send";
/// Event name of a completed message receive; args `from`, `to`, `tag`,
/// `bytes`.
pub const RECV_EVENT: &str = "msg.comm.recv";

/// Track name a rank's spans are recorded on (`"rank{r}"`).
pub fn rank_track(rank: usize) -> String {
    format!("rank{rank}")
}

/// Inverse of [`rank_track`]: `Some(r)` iff `track` is exactly `"rank{r}"`.
pub fn parse_rank_track(track: &str) -> Option<usize> {
    track.strip_prefix("rank")?.parse().ok()
}

/// One rank-tagged send or recv edge event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommEvent {
    /// Sending rank.
    pub from: usize,
    /// Receiving rank.
    pub to: usize,
    /// Message tag.
    pub tag: u64,
    /// Payload size.
    pub bytes: u64,
    /// Timestamp (send: when the message left; recv: when it was matched).
    pub ts_s: f64,
}

/// Everything recorded on one rank's track, categorized and time-ordered.
#[derive(Debug, Clone, Default)]
pub struct RankTimeline {
    /// The rank id (from the track name).
    pub rank: usize,
    /// Per-step windows ([`STEP_SPAN`]), by start time.
    pub steps: Vec<SpanRecord>,
    /// Blocked-receive spans ([`WAIT_SPAN`]), by start time.
    pub waits: Vec<SpanRecord>,
    /// Payload-copy spans ([`COPY_SPAN`]), by start time.
    pub copies: Vec<SpanRecord>,
    /// Barrier spans ([`BARRIER_SPAN`]), by start time.
    pub barriers: Vec<SpanRecord>,
}

/// A categorized span in the critical-path walk: kind, start, end, and —
/// for waits — the matched sender `(rank, send timestamp)` to jump to.
type CatSpan = (SegmentKind, f64, f64, Option<(usize, f64)>);

/// A reconstructed multi-rank trace: per-rank timelines plus the message
/// edges between them.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// One timeline per rank id that appears in the records (dense,
    /// indexed by rank; ranks with no records are empty timelines).
    pub ranks: Vec<RankTimeline>,
    /// All send events, in timestamp order.
    pub sends: Vec<CommEvent>,
    /// All recv events, in timestamp order.
    pub recvs: Vec<CommEvent>,
}

fn event_arg(e: &EventRecord, key: &str) -> Option<f64> {
    e.args
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.parse().ok())
}

fn comm_event(e: &EventRecord) -> Option<CommEvent> {
    Some(CommEvent {
        from: event_arg(e, "from")? as usize,
        to: event_arg(e, "to")? as usize,
        tag: event_arg(e, "tag")? as u64,
        bytes: event_arg(e, "bytes").unwrap_or(0.0) as u64,
        ts_s: e.ts_s,
    })
}

fn sort_by_start(v: &mut [SpanRecord]) {
    v.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
}

impl Trace {
    /// Reconstruct a trace from raw records. Spans on non-rank tracks and
    /// events other than [`SEND_EVENT`]/[`RECV_EVENT`] are ignored.
    pub fn from_records(spans: &[SpanRecord], events: &[EventRecord]) -> Trace {
        let mut ranks: Vec<RankTimeline> = Vec::new();
        for s in spans {
            let Some(r) = parse_rank_track(&s.track) else {
                continue;
            };
            if r > 4096 {
                continue; // defensive: don't let a hostile track name allocate
            }
            while ranks.len() <= r {
                let rank = ranks.len();
                ranks.push(RankTimeline {
                    rank,
                    ..RankTimeline::default()
                });
            }
            let tl = &mut ranks[r];
            match s.name.as_str() {
                STEP_SPAN => tl.steps.push(s.clone()),
                WAIT_SPAN => tl.waits.push(s.clone()),
                COPY_SPAN => tl.copies.push(s.clone()),
                BARRIER_SPAN => tl.barriers.push(s.clone()),
                _ => {}
            }
        }
        for tl in &mut ranks {
            sort_by_start(&mut tl.steps);
            sort_by_start(&mut tl.waits);
            sort_by_start(&mut tl.copies);
            sort_by_start(&mut tl.barriers);
        }
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for e in events {
            match e.name.as_str() {
                SEND_EVENT => sends.extend(comm_event(e)),
                RECV_EVENT => recvs.extend(comm_event(e)),
                _ => {}
            }
        }
        sends.sort_by(|a, b| a.ts_s.total_cmp(&b.ts_s));
        recvs.sort_by(|a, b| a.ts_s.total_cmp(&b.ts_s));
        Trace {
            ranks,
            sends,
            recvs,
        }
    }

    /// [`Trace::from_records`] over everything `rec` has recorded so far.
    pub fn from_recorder(rec: &Recorder) -> Trace {
        Trace::from_records(&rec.spans(), &rec.events())
    }

    /// Number of ranks with at least one step span.
    pub fn active_ranks(&self) -> usize {
        self.ranks.iter().filter(|t| !t.steps.is_empty()).count()
    }

    /// Overall step window: (earliest step start, latest step end, rank
    /// whose step ends last). `None` if no rank recorded a step span.
    pub fn window(&self) -> Option<(f64, f64, usize)> {
        let mut t0 = f64::INFINITY;
        let mut t1 = f64::NEG_INFINITY;
        let mut last_rank = 0;
        for tl in &self.ranks {
            for s in &tl.steps {
                t0 = t0.min(s.start_s);
                let end = s.start_s + s.dur_s;
                if end > t1 {
                    t1 = end;
                    last_rank = tl.rank;
                }
            }
        }
        if t0.is_finite() {
            Some((t0, t1, last_rank))
        } else {
            None
        }
    }

    /// Makespan of the k-th step across ranks (max end − min start over
    /// every rank's k-th step span). Length = the smallest step count
    /// over active ranks.
    pub fn per_step_makespans(&self) -> Vec<f64> {
        let active: Vec<&RankTimeline> =
            self.ranks.iter().filter(|t| !t.steps.is_empty()).collect();
        let n_steps = active.iter().map(|t| t.steps.len()).min().unwrap_or(0);
        (0..n_steps)
            .map(|k| {
                let start = active
                    .iter()
                    .map(|t| t.steps[k].start_s)
                    .fold(f64::INFINITY, f64::min);
                let end = active
                    .iter()
                    .map(|t| t.steps[k].start_s + t.steps[k].dur_s)
                    .fold(f64::NEG_INFINITY, f64::max);
                (end - start).max(0.0)
            })
            .collect()
    }

    /// Decompose each rank's in-step time into compute / copy / wait /
    /// barrier and summarize the imbalance. See [`BlameReport`].
    pub fn blame(&self) -> BlameReport {
        let mut ranks = Vec::new();
        for tl in &self.ranks {
            if tl.steps.is_empty() {
                continue;
            }
            let windows: Vec<(f64, f64)> = tl
                .steps
                .iter()
                .map(|s| (s.start_s, s.start_s + s.dur_s))
                .collect();
            let total_s: f64 = windows.iter().map(|(a, b)| (b - a).max(0.0)).sum();
            let clip = |spans: &[SpanRecord]| -> f64 {
                // `+ 0.0` canonicalizes the -0.0 an empty `sum()` yields,
                // which would otherwise render as "-0.0%".
                spans
                    .iter()
                    .map(|s| {
                        let (a, b) = (s.start_s, s.start_s + s.dur_s);
                        windows
                            .iter()
                            .map(|&(w0, w1)| (b.min(w1) - a.max(w0)).max(0.0))
                            .sum::<f64>()
                    })
                    .sum::<f64>()
                    + 0.0
            };
            let wait_s = clip(&tl.waits);
            let copy_s = clip(&tl.copies);
            let barrier_s = clip(&tl.barriers);
            let compute_s = (total_s - wait_s - copy_s - barrier_s).max(0.0);
            ranks.push(RankBlame {
                rank: tl.rank,
                total_s,
                compute_s,
                wait_s,
                copy_s,
                barrier_s,
            });
        }
        let (makespan_s, imbalance) = match self.window() {
            Some((t0, t1, _)) => {
                let hi = ranks.iter().map(|r| r.total_s).fold(0.0, f64::max);
                let lo = ranks
                    .iter()
                    .map(|r| r.total_s)
                    .fold(f64::INFINITY, f64::min);
                let imb = if hi > 0.0 && lo.is_finite() {
                    (hi - lo) / hi
                } else {
                    0.0
                };
                ((t1 - t0).max(0.0), imb)
            }
            None => (0.0, 0.0),
        };
        BlameReport {
            ranks,
            makespan_s,
            imbalance,
        }
    }

    /// Extract the critical path by a backward happens-before walk from
    /// the last-finishing rank. See the module docs for the recipe; the
    /// returned segments tile `[path start, window end]` exactly, so
    /// `CriticalPath::path_s ≤ makespan` holds by construction.
    pub fn critical_path(&self) -> CriticalPath {
        let Some((t0, t1, last_rank)) = self.window() else {
            return CriticalPath::default();
        };
        // Per-rank merged list of categorized spans (kind-tagged), plus
        // per-rank wait→matched-send-event resolution.
        let send_ts = self.match_sends();
        let mut per_rank: Vec<Vec<CatSpan>> = Vec::new();
        for tl in &self.ranks {
            let mut v = Vec::new();
            for (k, w) in tl.waits.iter().enumerate() {
                let jump = send_ts.get(&(tl.rank, k)).copied();
                v.push((SegmentKind::Wait, w.start_s, w.start_s + w.dur_s, jump));
            }
            for c in &tl.copies {
                v.push((SegmentKind::Copy, c.start_s, c.start_s + c.dur_s, None));
            }
            for b in &tl.barriers {
                v.push((SegmentKind::Barrier, b.start_s, b.start_s + b.dur_s, None));
            }
            v.sort_by(|a, b| a.1.total_cmp(&b.1));
            per_rank.push(v);
        }
        let floor = |rank: usize| -> f64 {
            self.ranks
                .get(rank)
                .and_then(|tl| tl.steps.first())
                .map(|s| s.start_s)
                .unwrap_or(t0)
        };

        let mut segments: Vec<PathSegment> = Vec::new();
        let mut cur = t1;
        let mut rank = last_rank;
        // Hard iteration bound so a degenerate trace can never hang us.
        let max_iters = 2 * per_rank.iter().map(Vec::len).sum::<usize>() + 64;
        for _ in 0..max_iters {
            let lo = floor(rank);
            if cur <= lo + 1e-12 {
                break;
            }
            // Latest categorized span on `rank` with a nonzero clip
            // against (lo, cur).
            let pick = per_rank
                .get(rank)
                .into_iter()
                .flatten()
                .rfind(|&&(_, s, e, _)| s < cur && e.min(cur) > s && e.min(cur) > lo)
                .copied();
            let Some((kind, s, e, jump)) = pick else {
                segments.push(PathSegment {
                    rank,
                    kind: SegmentKind::Compute,
                    start_s: lo,
                    end_s: cur,
                });
                break;
            };
            let ce = e.min(cur);
            if ce < cur {
                segments.push(PathSegment {
                    rank,
                    kind: SegmentKind::Compute,
                    start_s: ce,
                    end_s: cur,
                });
            }
            match (kind, jump) {
                (SegmentKind::Wait, Some((sender, sts)))
                    if sender != rank && sts < ce && sts > t0 - 1.0 =>
                {
                    // Blocked wait with a matched causal edge: the path
                    // continues on the sender at the send instant; the
                    // in-flight interval is blamed on wait.
                    segments.push(PathSegment {
                        rank,
                        kind: SegmentKind::Wait,
                        start_s: sts,
                        end_s: ce,
                    });
                    cur = sts;
                    rank = sender;
                }
                _ => {
                    segments.push(PathSegment {
                        rank,
                        kind,
                        start_s: s.max(lo),
                        end_s: ce,
                    });
                    cur = s.max(lo);
                }
            }
        }
        segments.retain(|s| s.end_s - s.start_s > 0.0);
        segments.reverse();
        let mut cp = CriticalPath {
            start_s: segments.first().map(|s| s.start_s).unwrap_or(t1),
            end_s: t1,
            makespan_s: (t1 - t0).max(0.0),
            ..CriticalPath::default()
        };
        for seg in &segments {
            let d = seg.end_s - seg.start_s;
            match seg.kind {
                SegmentKind::Compute => cp.compute_s += d,
                SegmentKind::Wait => cp.wait_s += d,
                SegmentKind::Copy => cp.copy_s += d,
                SegmentKind::Barrier => cp.barrier_s += d,
            }
        }
        cp.segments = segments;
        cp
    }

    /// FIFO-match every recv to its send: the k-th recv with key
    /// `(from, to, tag)` pairs with the k-th send with the same key. The
    /// map key is `(rank, wait index on that rank)`; the value is
    /// `(sender, send timestamp)`.
    fn match_sends(&self) -> HashMap<(usize, usize), (usize, f64)> {
        // Sends per (from, to, tag), in time order.
        let mut fifo: HashMap<(usize, usize, u64), Vec<f64>> = HashMap::new();
        for s in &self.sends {
            fifo.entry((s.from, s.to, s.tag)).or_default().push(s.ts_s);
        }
        let mut next: HashMap<(usize, usize, u64), usize> = HashMap::new();
        // Recvs per receiving rank, in time order (self.recvs is sorted);
        // the k-th recv on a rank matches the k-th wait span on that rank
        // because `comm::recv` emits exactly one of each, in program
        // order, on the rank's own thread.
        let mut wait_idx: HashMap<usize, usize> = HashMap::new();
        let mut out = HashMap::new();
        for r in &self.recvs {
            let k = wait_idx.entry(r.to).or_insert(0);
            let key = (r.from, r.to, r.tag);
            let n = next.entry(key).or_insert(0);
            if let Some(ts) = fifo.get(&key).and_then(|v| v.get(*n)) {
                out.insert((r.to, *k), (r.from, *ts));
            }
            *n += 1;
            *k += 1;
        }
        out
    }
}

/// What a critical-path segment was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Kernel work (the residual between categorized spans).
    Compute,
    /// Blocked in `recv` (includes the in-flight time after the matched
    /// send when the walk jumps ranks).
    Wait,
    /// Halo payload pack/unpack.
    Copy,
    /// Barrier.
    Barrier,
}

impl SegmentKind {
    /// Short lower-case label (`"compute"`, `"wait"`, ...).
    pub fn label(&self) -> &'static str {
        match self {
            SegmentKind::Compute => "compute",
            SegmentKind::Wait => "wait",
            SegmentKind::Copy => "copy",
            SegmentKind::Barrier => "barrier",
        }
    }
}

/// One contiguous piece of the critical path, on one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathSegment {
    /// Rank the segment ran on.
    pub rank: usize,
    /// Attribution.
    pub kind: SegmentKind,
    /// Segment start (recorder epoch seconds).
    pub start_s: f64,
    /// Segment end.
    pub end_s: f64,
}

/// The extracted critical path. Segments tile `[start_s, end_s]`
/// contiguously (earliest first), so `path_s() ≤ makespan_s` always.
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// Path segments, earliest first.
    pub segments: Vec<PathSegment>,
    /// Where the backward walk terminated.
    pub start_s: f64,
    /// The overall window end (last step end).
    pub end_s: f64,
    /// Overall window length (last step end − first step start).
    pub makespan_s: f64,
    /// Path seconds attributed to compute.
    pub compute_s: f64,
    /// Path seconds attributed to blocked wait / in-flight messages.
    pub wait_s: f64,
    /// Path seconds attributed to payload copies.
    pub copy_s: f64,
    /// Path seconds attributed to barriers.
    pub barrier_s: f64,
}

impl CriticalPath {
    /// Total path length (`end_s − start_s`; equals the sum of the four
    /// attribution buckets).
    pub fn path_s(&self) -> f64 {
        (self.end_s - self.start_s).max(0.0)
    }

    /// How many distinct ranks the path visits.
    pub fn ranks_visited(&self) -> usize {
        let mut ranks: Vec<usize> = self.segments.iter().map(|s| s.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks.len()
    }

    /// One-paragraph human summary.
    pub fn render(&self) -> String {
        let p = self.path_s();
        let frac = |x: f64| if p > 0.0 { 100.0 * x / p } else { 0.0 };
        format!(
            "critical path {:.3} ms over {} rank(s) ({} segments): \
             compute {:.1}%, wait {:.1}%, copy {:.1}%, barrier {:.1}% \
             (window makespan {:.3} ms)",
            p * 1e3,
            self.ranks_visited(),
            self.segments.len(),
            frac(self.compute_s),
            frac(self.wait_s),
            frac(self.copy_s),
            frac(self.barrier_s),
            self.makespan_s * 1e3,
        )
    }
}

/// One rank's blame decomposition. `total_s` is the summed length of the
/// rank's step windows; the four buckets partition it (compute is the
/// residual, so the fractions sum to 1 whenever `total_s > 0`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankBlame {
    /// Rank id.
    pub rank: usize,
    /// Summed step-window seconds.
    pub total_s: f64,
    /// Residual compute seconds.
    pub compute_s: f64,
    /// Blocked-receive seconds (clipped to step windows).
    pub wait_s: f64,
    /// Payload-copy seconds (clipped to step windows).
    pub copy_s: f64,
    /// Barrier seconds (clipped to step windows).
    pub barrier_s: f64,
}

impl RankBlame {
    fn denom(&self) -> f64 {
        let d = self.compute_s + self.wait_s + self.copy_s + self.barrier_s;
        if d > 0.0 {
            d
        } else {
            1.0
        }
    }

    /// Fraction of step time in compute.
    pub fn compute_frac(&self) -> f64 {
        self.compute_s / self.denom()
    }

    /// Fraction of step time blocked in `recv`.
    pub fn wait_frac(&self) -> f64 {
        self.wait_s / self.denom()
    }

    /// Fraction of step time copying payloads.
    pub fn copy_frac(&self) -> f64 {
        self.copy_s / self.denom()
    }

    /// Fraction of step time in barriers.
    pub fn barrier_frac(&self) -> f64 {
        self.barrier_s / self.denom()
    }
}

/// Blame decomposition across all ranks.
#[derive(Debug, Clone, Default)]
pub struct BlameReport {
    /// Per-rank rows (ranks that recorded at least one step span).
    pub ranks: Vec<RankBlame>,
    /// Last step end − first step start across ranks.
    pub makespan_s: f64,
    /// `(max − min) / max` over per-rank `total_s` — same figure of merit
    /// as `Schedule::imbalance` in `mpas-sched`.
    pub imbalance: f64,
}

impl BlameReport {
    /// Largest per-rank wait fraction (the canonical "who is hurting"
    /// scalar the regression gate watches).
    pub fn max_wait_frac(&self) -> f64 {
        self.ranks.iter().map(|r| r.wait_frac()).fold(0.0, f64::max)
    }

    /// Mean per-rank compute fraction.
    pub fn mean_compute_frac(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.ranks.iter().map(|r| r.compute_frac()).sum::<f64>() / self.ranks.len() as f64
    }

    /// Fixed-width table, one row per rank plus a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>5} {:>10} {:>9} {:>9} {:>9} {:>9}",
            "rank", "total_ms", "compute", "wait", "copy", "barrier"
        );
        for r in &self.ranks {
            let _ = writeln!(
                out,
                "{:>5} {:>10.3} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
                r.rank,
                r.total_s * 1e3,
                100.0 * r.compute_frac(),
                100.0 * r.wait_frac(),
                100.0 * r.copy_frac(),
                100.0 * r.barrier_frac(),
            );
        }
        let _ = writeln!(
            out,
            "makespan {:.3} ms, imbalance {:.3}, max wait frac {:.3}",
            self.makespan_s * 1e3,
            self.imbalance,
            self.max_wait_frac()
        );
        out
    }
}

/// Publish a blame report (and optionally a critical path) as
/// `analysis.*` gauges on `rec`, so the regression gate can watch blame
/// fractions with the same machinery it uses for any other metric.
pub fn record_blame(rec: &Recorder, blame: &BlameReport, cp: Option<&CriticalPath>) {
    if !rec.is_enabled() {
        return;
    }
    rec.set_gauge("analysis.blame.makespan_s", blame.makespan_s);
    rec.set_gauge("analysis.blame.imbalance", blame.imbalance);
    rec.set_gauge("analysis.blame.max_wait_frac", blame.max_wait_frac());
    rec.set_gauge(
        "analysis.blame.mean_compute_frac",
        blame.mean_compute_frac(),
    );
    for r in &blame.ranks {
        rec.set_gauge(
            &format!("analysis.blame.rank{}.compute_frac", r.rank),
            r.compute_frac(),
        );
        rec.set_gauge(
            &format!("analysis.blame.rank{}.wait_frac", r.rank),
            r.wait_frac(),
        );
        rec.set_gauge(
            &format!("analysis.blame.rank{}.copy_frac", r.rank),
            r.copy_frac(),
        );
        rec.set_gauge(
            &format!("analysis.blame.rank{}.barrier_frac", r.rank),
            r.barrier_frac(),
        );
    }
    if let Some(cp) = cp {
        rec.set_gauge("analysis.cp.path_s", cp.path_s());
        rec.set_gauge("analysis.cp.compute_s", cp.compute_s);
        rec.set_gauge("analysis.cp.wait_s", cp.wait_s);
        rec.set_gauge("analysis.cp.copy_s", cp.copy_s);
        rec.set_gauge("analysis.cp.barrier_s", cp.barrier_s);
    }
}

/// One task of a modeled schedule (`mpas-sched`'s `Schedule::nodes`,
/// flattened to plain data so this crate stays dependency-free).
#[derive(Debug, Clone, PartialEq)]
pub struct ModeledTask {
    /// Kernel / pattern name.
    pub name: String,
    /// Modeled start, seconds from substep start.
    pub start_s: f64,
    /// Modeled finish.
    pub finish_s: f64,
}

/// Per-kernel slack of a modeled schedule against its own makespan.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSlack {
    /// Kernel name.
    pub name: String,
    /// Modeled start.
    pub start_s: f64,
    /// Modeled finish.
    pub finish_s: f64,
    /// `modeled makespan − finish`: how much later this kernel could end
    /// without extending the modeled schedule.
    pub slack_s: f64,
}

/// Measured-vs-modeled comparison for one step (or substep).
#[derive(Debug, Clone, Default)]
pub struct ScheduleDiff {
    /// Modeled makespan (max task finish).
    pub modeled_s: f64,
    /// Measured time for the same unit of work.
    pub measured_s: f64,
    /// `measured / modeled` (0 when the model is degenerate).
    pub ratio: f64,
    /// Per-kernel slack, sorted tightest-first (slack 0 = on the modeled
    /// critical path).
    pub kernels: Vec<KernelSlack>,
}

/// Diff a measured duration against a modeled schedule: the headline
/// measured/modeled ratio plus per-kernel slack within the model.
pub fn diff_schedule(modeled: &[ModeledTask], measured_s: f64) -> ScheduleDiff {
    let modeled_span = modeled.iter().map(|t| t.finish_s).fold(0.0, f64::max);
    let mut kernels: Vec<KernelSlack> = modeled
        .iter()
        .map(|t| KernelSlack {
            name: t.name.clone(),
            start_s: t.start_s,
            finish_s: t.finish_s,
            slack_s: (modeled_span - t.finish_s).max(0.0),
        })
        .collect();
    kernels.sort_by(|a, b| a.slack_s.total_cmp(&b.slack_s));
    ScheduleDiff {
        modeled_s: modeled_span,
        measured_s,
        ratio: if modeled_span > 0.0 {
            measured_s / modeled_span
        } else {
            0.0
        },
        kernels,
    }
}

/// A threshold watcher over one gauge (e.g. `core.sim.mass_drift`).
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantMonitor {
    /// Gauge to watch.
    pub metric: String,
    /// Alert when `|gauge| > max_abs` (or when the gauge is non-finite).
    pub max_abs: f64,
    /// Human explanation attached to the alert.
    pub description: String,
}

/// A tripped invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// The watched gauge.
    pub metric: String,
    /// Its offending value.
    pub value: f64,
    /// The `max_abs` threshold it crossed.
    pub threshold: f64,
    /// The monitor's description.
    pub message: String,
}

/// The conservation monitors every production run should carry: RK-4 on
/// the TRiSK C-grid conserves mass to rounding, so any visible drift is a
/// halo/partition bug, not physics.
pub fn default_invariants() -> Vec<InvariantMonitor> {
    vec![
        InvariantMonitor {
            metric: "core.sim.mass_drift".to_string(),
            max_abs: 1e-9,
            description: "relative mass drift must stay at rounding level".to_string(),
        },
        InvariantMonitor {
            metric: "core.sim.h_err_l2".to_string(),
            max_abs: 1e6,
            description: "height field must stay finite and bounded".to_string(),
        },
        InvariantMonitor {
            metric: "core.sim.max_courant".to_string(),
            max_abs: 1.0,
            description: "CFL: the gravity-wave Courant number must stay below 1".to_string(),
        },
        InvariantMonitor {
            metric: "core.sim.tracer_mass_drift".to_string(),
            max_abs: 1e-9,
            description: "relative tracer-mass drift must stay at rounding level".to_string(),
        },
    ]
}

/// Evaluate `monitors` against the recorder's gauges. Every violation is
/// returned *and* recorded as a structured `alert` event on `rec` (so it
/// lands in the trace/metrics artifacts). A missing gauge is not a
/// violation — a serial run has no halo bytes to watch.
///
/// If a flight-recorder dump path is armed
/// ([`Recorder::set_flight_dump`]), the first alert on each metric also
/// dumps the flight ring there (dump-on-anomaly), recorded as a
/// `flight.dump` event; repeated checks of a still-tripped invariant do
/// not dump again.
pub fn check_invariants(rec: &Recorder, monitors: &[InvariantMonitor]) -> Vec<Alert> {
    let snap = rec.snapshot();
    let mut alerts = Vec::new();
    for m in monitors {
        let Some(value) = snap.gauge(&m.metric) else {
            continue;
        };
        if value.is_finite() && value.abs() <= m.max_abs {
            continue;
        }
        rec.event(
            "alert",
            &[
                ("metric", m.metric.clone()),
                ("value", format!("{value:e}")),
                ("threshold", format!("{:e}", m.max_abs)),
                ("message", m.description.clone()),
            ],
        );
        if let Some(path) = rec.flight_dump_on_alert(&m.metric) {
            rec.event(
                "flight.dump",
                &[
                    ("metric", m.metric.clone()),
                    ("path", path.display().to_string()),
                ],
            );
        }
        alerts.push(Alert {
            metric: m.metric.clone(),
            value,
            threshold: m.max_abs,
            message: m.description.clone(),
        });
    }
    alerts
}

/// Incremental blame: the streaming counterpart of [`Trace::blame`] +
/// [`record_blame`], for consumers that need `analysis.*` signals *while
/// the run is still going* (the server's live endpoints, an online
/// rescheduler).
///
/// A `LiveBlame` keeps a cursor into the recorder's span buffer
/// ([`Recorder::spans_since`]) and per-rank running totals; each
/// [`update`](LiveBlame::update) ingests only the spans completed since
/// the last call — O(new spans), not O(trace) — and republishes the same
/// `analysis.blame.*` gauges [`record_blame`] writes, so downstream
/// consumers (gates, dashboards) cannot tell mid-run blame from
/// post-mortem blame by name.
///
/// Busy windows are [`STEP_SPAN`] spans by default; workloads whose
/// per-rank unit of work is named differently (the server's
/// `server.job{id}` worker spans) widen the match with
/// [`LiveBlame::matching`]. Wait/copy/barrier attribution uses the same
/// span names as the post-mortem path.
#[derive(Debug, Clone, Default)]
pub struct LiveBlame {
    cursor: usize,
    step_prefix: Option<String>,
    ranks: std::collections::BTreeMap<usize, LiveRank>,
}

/// Running per-rank totals accumulated by [`LiveBlame`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LiveRank {
    /// Total busy-window (step) seconds.
    pub busy_s: f64,
    /// Blocked-wait seconds.
    pub wait_s: f64,
    /// Payload-copy seconds.
    pub copy_s: f64,
    /// Barrier seconds.
    pub barrier_s: f64,
    /// Busy windows ingested.
    pub steps: usize,
}

impl LiveBlame {
    /// Busy windows are exactly [`STEP_SPAN`] spans.
    pub fn new() -> Self {
        LiveBlame::default()
    }

    /// Busy windows are [`STEP_SPAN`] spans *or* spans whose name starts
    /// with `step_prefix`.
    pub fn matching(step_prefix: &str) -> Self {
        LiveBlame {
            step_prefix: Some(step_prefix.to_string()),
            ..LiveBlame::default()
        }
    }

    /// Spans ingested so far (the recorder-buffer cursor).
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Per-rank running totals, rank-ordered.
    pub fn ranks(&self) -> impl Iterator<Item = (usize, &LiveRank)> {
        self.ranks.iter().map(|(r, t)| (*r, t))
    }

    /// Ingest every span completed since the last update and republish
    /// the `analysis.blame.*` gauges. Returns the number of new spans
    /// seen (0 means the gauges were left as they were).
    pub fn update(&mut self, rec: &Recorder) -> usize {
        let (cursor, new) = rec.spans_since(self.cursor);
        self.cursor = cursor;
        let mut changed = false;
        for s in &new {
            let Some(r) = parse_rank_track(&s.track) else {
                continue;
            };
            if r > 4096 {
                continue;
            }
            let t = self.ranks.entry(r).or_default();
            let is_busy = s.name == STEP_SPAN
                || self
                    .step_prefix
                    .as_deref()
                    .is_some_and(|p| s.name.starts_with(p));
            if is_busy {
                t.busy_s += s.dur_s.max(0.0);
                t.steps += 1;
                changed = true;
            } else {
                match s.name.as_str() {
                    WAIT_SPAN => t.wait_s += s.dur_s.max(0.0),
                    COPY_SPAN => t.copy_s += s.dur_s.max(0.0),
                    BARRIER_SPAN => t.barrier_s += s.dur_s.max(0.0),
                    _ => continue,
                }
                changed = true;
            }
        }
        if changed {
            self.publish(rec);
        }
        new.len()
    }

    fn publish(&self, rec: &Recorder) {
        if !rec.is_enabled() {
            return;
        }
        let mut max_busy = 0.0_f64;
        let mut min_busy = f64::INFINITY;
        let mut n = 0usize;
        let mut max_wait_frac = 0.0_f64;
        let mut sum_compute_frac = 0.0_f64;
        for (r, t) in &self.ranks {
            if t.busy_s <= 0.0 {
                continue;
            }
            let wait = (t.wait_s / t.busy_s).min(1.0);
            let copy = (t.copy_s / t.busy_s).min(1.0);
            let barrier = (t.barrier_s / t.busy_s).min(1.0);
            let compute = (1.0 - wait - copy - barrier).max(0.0);
            rec.set_gauge(&format!("analysis.blame.rank{r}.compute_frac"), compute);
            rec.set_gauge(&format!("analysis.blame.rank{r}.wait_frac"), wait);
            rec.set_gauge(&format!("analysis.blame.rank{r}.copy_frac"), copy);
            rec.set_gauge(&format!("analysis.blame.rank{r}.barrier_frac"), barrier);
            max_busy = max_busy.max(t.busy_s);
            min_busy = min_busy.min(t.busy_s);
            n += 1;
            max_wait_frac = max_wait_frac.max(wait);
            sum_compute_frac += compute;
        }
        if n == 0 {
            return;
        }
        rec.set_gauge("analysis.blame.makespan_s", max_busy);
        // Same figure of merit as `BlameReport::imbalance`.
        rec.set_gauge(
            "analysis.blame.imbalance",
            if max_busy > 0.0 {
                (max_busy - min_busy) / max_busy
            } else {
                0.0
            },
        );
        rec.set_gauge("analysis.blame.max_wait_frac", max_wait_frac);
        rec.set_gauge(
            "analysis.blame.mean_compute_frac",
            sum_compute_frac / n as f64,
        );
        rec.set_gauge("analysis.live.spans_ingested", self.cursor as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(track: &str, name: &str, start: f64, dur: f64) -> SpanRecord {
        SpanRecord {
            name: name.to_string(),
            track: track.to_string(),
            start_s: start,
            dur_s: dur,
            depth: 0,
        }
    }

    fn ev(name: &str, ts: f64, from: usize, to: usize, tag: u64) -> EventRecord {
        EventRecord {
            name: name.to_string(),
            ts_s: ts,
            args: vec![
                ("from".to_string(), from.to_string()),
                ("to".to_string(), to.to_string()),
                ("tag".to_string(), tag.to_string()),
                ("bytes".to_string(), "64".to_string()),
            ],
        }
    }

    #[test]
    fn rank_track_roundtrip() {
        assert_eq!(parse_rank_track(&rank_track(7)), Some(7));
        assert_eq!(parse_rank_track("rank12"), Some(12));
        assert_eq!(parse_rank_track("cpu-pool"), None);
        assert_eq!(parse_rank_track("rank"), None);
        assert_eq!(parse_rank_track("rankx"), None);
    }

    #[test]
    fn empty_trace_is_benign() {
        let t = Trace::from_records(&[], &[]);
        assert_eq!(t.active_ranks(), 0);
        assert!(t.window().is_none());
        assert!(t.per_step_makespans().is_empty());
        assert!(t.blame().ranks.is_empty());
        let cp = t.critical_path();
        assert_eq!(cp.path_s(), 0.0);
        assert!(cp.segments.is_empty());
        assert!(!t.blame().render().is_empty());
        assert!(!cp.render().is_empty());
    }

    #[test]
    fn blame_fractions_partition_the_step() {
        // One rank, one 10 s step: 2 s wait, 1 s copy, 3 s barrier,
        // 4 s residual compute. A stray wait outside the window must be
        // clipped away.
        let spans = vec![
            span("rank0", STEP_SPAN, 0.0, 10.0),
            span("rank0", WAIT_SPAN, 1.0, 2.0),
            span("rank0", COPY_SPAN, 4.0, 1.0),
            span("rank0", BARRIER_SPAN, 6.0, 3.0),
            span("rank0", WAIT_SPAN, 20.0, 5.0),
        ];
        let blame = Trace::from_records(&spans, &[]).blame();
        assert_eq!(blame.ranks.len(), 1);
        let r = &blame.ranks[0];
        assert!((r.total_s - 10.0).abs() < 1e-12);
        assert!((r.wait_s - 2.0).abs() < 1e-12);
        assert!((r.copy_s - 1.0).abs() < 1e-12);
        assert!((r.barrier_s - 3.0).abs() < 1e-12);
        assert!((r.compute_s - 4.0).abs() < 1e-12);
        let total_frac = r.compute_frac() + r.wait_frac() + r.copy_frac() + r.barrier_frac();
        assert!((total_frac - 1.0).abs() < 1e-9);
    }

    #[test]
    fn golden_three_rank_critical_path() {
        // Hand-built 3-rank trace, one step each on [0, 10]:
        //   rank2 computes until 4, sends to rank1 at t=4;
        //   rank1 blocks 2..5 waiting on it (recv matched at 5), then
        //     computes until 8 and sends to rank0 at t=8;
        //   rank0 blocks 3..9 on rank1's message, computes 9..10.
        // Expected path (backward from rank0 end at 10): compute 9..10 on
        // rank0, wait 8..9 (jump to rank1 at 8), compute 5..8 on rank1,
        // wait 4..5 (jump to rank2 at 4), compute 0..4 on rank2.
        let spans = vec![
            span("rank0", STEP_SPAN, 0.0, 10.0),
            span("rank1", STEP_SPAN, 0.0, 8.5),
            span("rank2", STEP_SPAN, 0.0, 4.5),
            span("rank0", WAIT_SPAN, 3.0, 6.0),
            span("rank1", WAIT_SPAN, 2.0, 3.0),
        ];
        let events = vec![
            ev(SEND_EVENT, 4.0, 2, 1, 7),
            ev(RECV_EVENT, 5.0, 2, 1, 7),
            ev(SEND_EVENT, 8.0, 1, 0, 9),
            ev(RECV_EVENT, 9.0, 1, 0, 9),
        ];
        let t = Trace::from_records(&spans, &events);
        let cp = t.critical_path();
        assert!((cp.makespan_s - 10.0).abs() < 1e-12);
        assert!((cp.path_s() - 10.0).abs() < 1e-12);
        assert_eq!(cp.ranks_visited(), 3);
        let kinds: Vec<(usize, SegmentKind)> =
            cp.segments.iter().map(|s| (s.rank, s.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                (2, SegmentKind::Compute),
                (1, SegmentKind::Wait),
                (1, SegmentKind::Compute),
                (0, SegmentKind::Wait),
                (0, SegmentKind::Compute),
            ]
        );
        // Segment boundaries are the hand-computed instants.
        let bounds: Vec<(f64, f64)> = cp.segments.iter().map(|s| (s.start_s, s.end_s)).collect();
        assert_eq!(
            bounds,
            vec![(0.0, 4.0), (4.0, 5.0), (5.0, 8.0), (8.0, 9.0), (9.0, 10.0)]
        );
        assert!((cp.compute_s - 8.0).abs() < 1e-12);
        assert!((cp.wait_s - 2.0).abs() < 1e-12);
        // Segments tile [start, end].
        for w in cp.segments.windows(2) {
            assert!((w[0].end_s - w[1].start_s).abs() < 1e-12);
        }
    }

    #[test]
    fn unmatched_wait_stays_on_rank() {
        // A wait with no recorded recv/send events cannot jump; it is
        // attributed on the same rank and the walk continues backward.
        let spans = vec![
            span("rank0", STEP_SPAN, 0.0, 6.0),
            span("rank0", WAIT_SPAN, 2.0, 2.0),
        ];
        let cp = Trace::from_records(&spans, &[]).critical_path();
        assert!((cp.path_s() - 6.0).abs() < 1e-12);
        assert!((cp.wait_s - 2.0).abs() < 1e-12);
        assert!((cp.compute_s - 4.0).abs() < 1e-12);
        assert_eq!(cp.ranks_visited(), 1);
    }

    #[test]
    fn per_step_makespans_use_kth_step() {
        let spans = vec![
            span("rank0", STEP_SPAN, 0.0, 1.0),
            span("rank0", STEP_SPAN, 1.0, 2.0),
            span("rank1", STEP_SPAN, 0.5, 1.0),
            span("rank1", STEP_SPAN, 1.5, 1.0),
        ];
        let ms = Trace::from_records(&spans, &[]).per_step_makespans();
        assert_eq!(ms.len(), 2);
        assert!((ms[0] - 1.5).abs() < 1e-12); // [0, 1.5]
        assert!((ms[1] - 2.0).abs() < 1e-12); // [1, 3]
    }

    #[test]
    fn schedule_diff_orders_by_slack() {
        let modeled = vec![
            ModeledTask {
                name: "A1".into(),
                start_s: 0.0,
                finish_s: 1.0,
            },
            ModeledTask {
                name: "B1".into(),
                start_s: 1.0,
                finish_s: 4.0,
            },
        ];
        let d = diff_schedule(&modeled, 6.0);
        assert_eq!(d.modeled_s, 4.0);
        assert!((d.ratio - 1.5).abs() < 1e-12);
        assert_eq!(d.kernels[0].name, "B1"); // slack 0: on modeled CP
        assert_eq!(d.kernels[0].slack_s, 0.0);
        assert_eq!(d.kernels[1].slack_s, 3.0);
    }

    #[test]
    fn invariant_monitor_trips_and_records_alert() {
        let rec = Recorder::new();
        rec.set_gauge("core.sim.mass_drift", 1e-15);
        assert!(check_invariants(&rec, &default_invariants()).is_empty());
        rec.set_gauge("core.sim.mass_drift", 3e-6);
        let alerts = check_invariants(&rec, &default_invariants());
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].metric, "core.sim.mass_drift");
        assert!((alerts[0].value - 3e-6).abs() < 1e-18);
        let evs = rec.events();
        assert!(evs.iter().any(|e| e.name == "alert"));
        // NaN also trips.
        rec.set_gauge("core.sim.mass_drift", f64::NAN);
        assert_eq!(check_invariants(&rec, &default_invariants()).len(), 1);
    }

    #[test]
    fn record_blame_publishes_gauges() {
        let spans = vec![
            span("rank0", STEP_SPAN, 0.0, 2.0),
            span("rank1", STEP_SPAN, 0.0, 1.0),
        ];
        let t = Trace::from_records(&spans, &[]);
        let rec = Recorder::new();
        record_blame(&rec, &t.blame(), Some(&t.critical_path()));
        let snap = rec.snapshot();
        assert!((snap.gauge("analysis.blame.imbalance").unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(snap.gauge("analysis.blame.rank0.compute_frac"), Some(1.0));
        assert!(snap.gauge("analysis.cp.path_s").is_some());
        // No-op recorder: no work, no panic.
        record_blame(&Recorder::noop(), &t.blame(), None);
    }

    #[test]
    fn live_blame_ingests_incrementally_and_matches_names() {
        let rec = Recorder::new();
        let mut live = LiveBlame::new();
        assert_eq!(live.update(&rec), 0);

        {
            let _s = rec.span(&rank_track(0), STEP_SPAN);
        }
        {
            let _w = rec.span(&rank_track(0), WAIT_SPAN);
        }
        let n = live.update(&rec);
        assert_eq!(n, 2);
        assert_eq!(live.cursor(), 2);
        let (_, r0) = live.ranks().next().unwrap();
        assert_eq!(r0.steps, 1);
        assert!(r0.wait_s >= 0.0);
        // Second update sees nothing new and leaves gauges intact.
        assert_eq!(live.update(&rec), 0);
        let snap = rec.snapshot();
        assert!(snap.gauge("analysis.blame.rank0.compute_frac").is_some());
        assert!(snap.gauge("analysis.blame.makespan_s").is_some());
        assert_eq!(
            snap.gauge("analysis.live.spans_ingested"),
            Some(live.cursor() as f64)
        );
    }

    #[test]
    fn live_blame_matching_widens_the_busy_window() {
        let rec = Recorder::new();
        {
            let _j = rec.span(&rank_track(1), "server.job42");
        }
        let mut strict = LiveBlame::new();
        strict.update(&rec);
        assert!(strict.ranks().next().map(|(_, t)| t.steps).unwrap_or(0) == 0);

        let mut wide = LiveBlame::matching("server.job");
        wide.update(&rec);
        let (r, t) = wide.ranks().next().unwrap();
        assert_eq!((r, t.steps), (1, 1));
    }

    #[test]
    fn dump_on_alert_fires_exactly_once_per_metric() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("flight_alert_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let rec = Recorder::new();
        rec.set_flight_dump(&path);
        rec.set_gauge("core.sim.mass_drift", 1e-3);
        let monitors = default_invariants();
        assert_eq!(check_invariants(&rec, &monitors).len(), 1);
        // Still tripped on a second sweep: alert again, but no second dump.
        assert_eq!(check_invariants(&rec, &monitors).len(), 1);
        let snap = rec.snapshot();
        assert_eq!(snap.counter(crate::names::FLIGHT_DUMPS), Some(1));
        let trace = std::fs::read_to_string(&path).unwrap();
        crate::export::validate_json(&trace).expect("dump must be a valid Chrome trace");
        assert!(trace.contains("\"traceEvents\""));
        // A *different* tripped metric dumps once more.
        rec.set_gauge("core.sim.max_courant", 5.0);
        assert_eq!(check_invariants(&rec, &monitors).len(), 2);
        assert_eq!(rec.snapshot().counter(crate::names::FLIGHT_DUMPS), Some(2));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unarmed_recorder_alerts_without_dumping() {
        let rec = Recorder::new();
        rec.set_gauge("core.sim.mass_drift", 1.0);
        assert_eq!(check_invariants(&rec, &default_invariants()).len(), 1);
        assert_eq!(rec.snapshot().counter(crate::names::FLIGHT_DUMPS), None);
        assert!(!rec.events().iter().any(|e| e.name == "flight.dump"));
    }
}
