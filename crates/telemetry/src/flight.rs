//! Flight recorder: a bounded ring of the most recent telemetry events.
//!
//! Post-mortem traces answer "what happened over the whole run"; the
//! flight recorder answers "what happened *just now*" — the last few
//! thousand spans, counter increments, gauge writes and instants, kept in
//! a fixed-capacity ring so memory stays bounded no matter how long the
//! process lives. It is **always on** for a live [`crate::Recorder`]
//! (a no-op recorder still costs one branch per hook): every span,
//! counter, gauge, histogram and instant write also pushes one
//! [`FlightEvent`] into the ring, under the same mutex acquisition the
//! main buffers already take, so the marginal cost is one bounded vector
//! write — the `crates/bench` overhead guard holds the whole live path
//! under 5 % of a step. The one exception is pure timers
//! ([`crate::Recorder::time`]): at one per kernel per RK stage they
//! would wash everything else out of the ring within a few dozen steps,
//! so their samples feed histograms and windows but not the ring.
//!
//! Two ways out of the ring:
//!
//! * **on demand** — [`crate::Recorder::flight_events`] /
//!   [`crate::Recorder::flight_dump_to`] snapshot the ring (oldest event
//!   first) and [`to_chrome_trace`] renders it as a valid Chrome trace;
//! * **dump-on-anomaly** — after [`crate::Recorder::set_flight_dump`]
//!   arms a dump path, `analysis::check_invariants` writes the ring to
//!   that path the first time each monitored metric trips (exactly once
//!   per alerted metric, so a repeatedly-polled invariant cannot spam the
//!   disk). Each dump increments [`crate::names::FLIGHT_DUMPS`].
//!
//! Scoped recorders (see [`crate::Recorder::scoped`]) prefix the names
//! and tracks they record, so [`filter_prefix`] can slice one shared ring
//! into per-job dumps (`mpas-server`'s `GET /jobs/{id}/flight`).

use crate::export::ChromeTrace;
use crate::{EventRecord, SpanRecord};
use std::sync::Arc;

/// Default ring capacity of a [`crate::Recorder::new`] flight recorder.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// One entry in the flight-recorder ring.
///
/// Metric names are `Arc<str>` shared with the recorder's interned
/// per-metric slots, so a ring push never allocates — the overhead guard
/// depends on that.
#[derive(Debug, Clone)]
pub enum FlightEvent {
    /// A completed span (also in the unbounded span buffer).
    Span(SpanRecord),
    /// A counter increment.
    Counter {
        /// Counter name.
        name: Arc<str>,
        /// Increment added (not the running total).
        delta: u64,
        /// Seconds since the recorder epoch.
        ts_s: f64,
    },
    /// A gauge write.
    Gauge {
        /// Gauge name.
        name: Arc<str>,
        /// Value written.
        value: f64,
        /// Seconds since the recorder epoch.
        ts_s: f64,
    },
    /// A histogram sample from [`crate::Recorder::record`] (pure-timer
    /// samples stay out of the ring — see the module docs).
    Sample {
        /// Histogram name.
        name: Arc<str>,
        /// Sample value.
        value: f64,
        /// Seconds since the recorder epoch.
        ts_s: f64,
    },
    /// An instantaneous event with arguments.
    Instant(EventRecord),
}

impl FlightEvent {
    /// The metric/span/event name this entry carries.
    pub fn name(&self) -> &str {
        match self {
            FlightEvent::Span(s) => &s.name,
            FlightEvent::Counter { name, .. }
            | FlightEvent::Gauge { name, .. }
            | FlightEvent::Sample { name, .. } => name,
            FlightEvent::Instant(e) => &e.name,
        }
    }

    /// Timestamp (span start for spans), seconds since the recorder epoch.
    pub fn ts_s(&self) -> f64 {
        match self {
            FlightEvent::Span(s) => s.start_s,
            FlightEvent::Counter { ts_s, .. }
            | FlightEvent::Gauge { ts_s, .. }
            | FlightEvent::Sample { ts_s, .. } => *ts_s,
            FlightEvent::Instant(e) => e.ts_s,
        }
    }
}

/// Fixed-capacity overwrite-oldest ring. Lives inside the recorder's
/// buffer mutex, so pushes ride the lock the main buffers already hold.
#[derive(Debug)]
pub(crate) struct FlightRing {
    cap: usize,
    events: Vec<FlightEvent>,
    /// Index of the oldest event once the ring is full (0 while
    /// filling, and immediately after a resize re-linearises it).
    head: usize,
    /// Events ever pushed (so `total - len` = events overwritten).
    total: u64,
}

impl FlightRing {
    pub(crate) fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        FlightRing {
            cap,
            events: Vec::with_capacity(cap),
            head: 0,
            total: 0,
        }
    }

    pub(crate) fn push(&mut self, ev: FlightEvent) {
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
        }
        self.total += 1;
    }

    pub(crate) fn capacity(&self) -> usize {
        self.cap
    }

    /// Resize in place, keeping the newest events (all of them on a
    /// grow, the most recent `cap` on a shrink). `total` is preserved
    /// so overwrite accounting stays monotonic.
    pub(crate) fn set_capacity(&mut self, cap: usize) {
        let cap = cap.max(1);
        if cap == self.cap {
            return;
        }
        let mut kept = self.chronological();
        if kept.len() > cap {
            kept.drain(..kept.len() - cap);
        }
        self.cap = cap;
        self.events = kept;
        self.head = 0;
    }

    pub(crate) fn total(&self) -> u64 {
        self.total
    }

    /// Ring contents, oldest first.
    pub(crate) fn chronological(&self) -> Vec<FlightEvent> {
        if self.events.len() < self.cap || self.head == 0 {
            return self.events.clone();
        }
        let mut out = Vec::with_capacity(self.cap);
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }
}

/// Keep only events whose name — or, for spans, whose track — starts with
/// `prefix`. With scoped recorders prefixing both, this slices a shared
/// ring into one job's view.
pub fn filter_prefix(events: &[FlightEvent], prefix: &str) -> Vec<FlightEvent> {
    events
        .iter()
        .filter(|e| {
            e.name().starts_with(prefix)
                || matches!(e, FlightEvent::Span(s) if s.track.starts_with(prefix))
        })
        .cloned()
        .collect()
}

/// Render flight events as a Chrome trace-event document: spans become
/// complete slices, counters/gauges/samples become `ph:"C"` counter
/// tracks, instants become `ph:"i"` events — all in one `flight-recorder`
/// track group (pid 3, clear of the modeled/measured groups).
pub fn to_chrome_trace(events: &[FlightEvent]) -> String {
    const PID: u32 = 3;
    let mut t = ChromeTrace::new();
    t.process_name(PID, "flight-recorder");
    for e in events {
        match e {
            FlightEvent::Span(s) => {
                t.complete(
                    PID,
                    &s.track,
                    &s.name,
                    s.start_s * 1e6,
                    (s.dur_s * 1e6).max(0.001),
                );
            }
            FlightEvent::Counter { name, delta, ts_s } => {
                t.counter(PID, name, ts_s * 1e6, *delta as f64);
            }
            FlightEvent::Gauge { name, value, ts_s }
            | FlightEvent::Sample { name, value, ts_s } => {
                t.counter(PID, name, ts_s * 1e6, *value);
            }
            FlightEvent::Instant(ev) => {
                let args: Vec<(&str, String)> = ev
                    .args
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.clone()))
                    .collect();
                t.instant(PID, "events", &ev.name, ev.ts_s * 1e6, &args);
            }
        }
    }
    t.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::validate_json;

    fn counter(name: &str, n: u64) -> FlightEvent {
        FlightEvent::Counter {
            name: name.into(),
            delta: n,
            ts_s: n as f64,
        }
    }

    #[test]
    fn ring_keeps_the_newest_in_chronological_order() {
        let mut ring = FlightRing::new(4);
        for i in 0..10 {
            ring.push(counter("c", i));
        }
        assert_eq!(ring.total(), 10);
        let out = ring.chronological();
        assert_eq!(out.len(), 4);
        let seen: Vec<f64> = out.iter().map(|e| e.ts_s()).collect();
        assert_eq!(seen, vec![6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn partial_ring_returns_everything() {
        let mut ring = FlightRing::new(8);
        for i in 0..3 {
            ring.push(counter("c", i));
        }
        assert_eq!(ring.chronological().len(), 3);
        assert_eq!(ring.capacity(), 8);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut ring = FlightRing::new(0);
        ring.push(counter("c", 1));
        ring.push(counter("c", 2));
        assert_eq!(ring.chronological().len(), 1);
        assert_eq!(ring.chronological()[0].ts_s(), 2.0);
    }

    #[test]
    fn resize_keeps_the_newest_events_and_total() {
        let mut ring = FlightRing::new(4);
        for i in 0..10 {
            ring.push(counter("c", i));
        }
        // Grow: the 4 survivors stay, new pushes extend past them.
        ring.set_capacity(8);
        assert_eq!(ring.capacity(), 8);
        assert_eq!(ring.total(), 10);
        ring.push(counter("c", 10));
        let seen: Vec<f64> = ring.chronological().iter().map(|e| e.ts_s()).collect();
        assert_eq!(seen, vec![6.0, 7.0, 8.0, 9.0, 10.0]);
        // Shrink: only the newest two remain, and wrap still works.
        ring.set_capacity(2);
        ring.push(counter("c", 11));
        let seen: Vec<f64> = ring.chronological().iter().map(|e| e.ts_s()).collect();
        assert_eq!(seen, vec![10.0, 11.0]);
        assert_eq!(ring.total(), 12);
    }

    #[test]
    fn prefix_filter_slices_by_name_or_track() {
        let events = vec![
            counter("job1.core.sim.steps", 1),
            counter("job2.core.sim.steps", 2),
            FlightEvent::Span(SpanRecord {
                name: "core.step".to_string(),
                track: "job1.measured".to_string(),
                start_s: 0.0,
                dur_s: 1.0,
                depth: 0,
            }),
        ];
        let job1 = filter_prefix(&events, "job1.");
        assert_eq!(job1.len(), 2);
        assert!(filter_prefix(&events, "job2.").len() == 1);
        assert!(filter_prefix(&events, "job3.").is_empty());
    }

    #[test]
    fn chrome_export_is_valid_json_with_all_shapes() {
        let events = vec![
            FlightEvent::Span(SpanRecord {
                name: "step".to_string(),
                track: "rank0".to_string(),
                start_s: 0.0,
                dur_s: 0.5,
                depth: 0,
            }),
            counter("msg.halo.bytes", 64),
            FlightEvent::Gauge {
                name: "core.sim.mass_drift".into(),
                value: 1e-14,
                ts_s: 0.4,
            },
            FlightEvent::Instant(EventRecord {
                name: "alert".to_string(),
                ts_s: 0.6,
                args: vec![("metric".to_string(), "m\"x".to_string())],
            }),
        ];
        let json = to_chrome_trace(&events);
        validate_json(&json).unwrap_or_else(|p| panic!("invalid JSON at byte {p}: {json}"));
        assert!(json.contains("\"flight-recorder\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
    }
}
