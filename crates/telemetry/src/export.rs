//! Exporters: Chrome-trace (Perfetto) JSON, metrics snapshots as JSON and
//! CSV, and the shared JSON string escaper.
//!
//! The Chrome trace-event format puts every slice on a `(pid, tid)` row;
//! Perfetto renders each `pid` as a collapsible *track group* named by its
//! `process_name` metadata event. [`ChromeTrace`] exploits that to carry a
//! **modeled** schedule (pid 1) and the **measured** execution (pid 2) in
//! one file — the paper's Fig. 4 comparison, diffable in one viewer window.
//!
//! Everything here is hand-rolled JSON (the crate is dependency-free);
//! [`json_escape`] is the single escaper every writer in the workspace
//! shares, and [`validate_json`] is a strict syntax checker used by tests
//! and the CI smoke job to prove emitted artifacts parse.

use crate::{EventRecord, MetricsSnapshot, SpanRecord};
use std::fmt::Write as _;

/// Escape a string for embedding inside a JSON string literal
/// (quotes, backslashes, and control characters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Builder for a Chrome trace-event JSON document with named track groups.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Name the track group `pid` (a `process_name` metadata event).
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
    }

    /// Add a complete slice (`ph:"X"`) on row `(pid, tid)`.
    pub fn complete(&mut self, pid: u32, tid: &str, name: &str, ts_us: f64, dur_us: f64) {
        self.complete_with_args(pid, tid, name, ts_us, dur_us, &[]);
    }

    /// Add a complete slice with key/value `args`.
    pub fn complete_with_args(
        &mut self,
        pid: u32,
        tid: &str,
        name: &str,
        ts_us: f64,
        dur_us: f64,
        args: &[(&str, String)],
    ) {
        let mut ev = format!(
            "{{\"name\":\"{}\",\"cat\":\"pattern\",\"ph\":\"X\",\"ts\":{ts_us:.3},\"dur\":{dur_us:.3},\"pid\":{pid},\"tid\":\"{}\"",
            json_escape(name),
            json_escape(tid),
        );
        push_args(&mut ev, args);
        ev.push('}');
        self.events.push(ev);
    }

    /// Add an instantaneous event (`ph:"i"`) with key/value `args`.
    pub fn instant(
        &mut self,
        pid: u32,
        tid: &str,
        name: &str,
        ts_us: f64,
        args: &[(&str, String)],
    ) {
        let mut ev = format!(
            "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts_us:.3},\"pid\":{pid},\"tid\":\"{}\"",
            json_escape(name),
            json_escape(tid),
        );
        push_args(&mut ev, args);
        ev.push('}');
        self.events.push(ev);
    }

    /// Add every span as a slice in track group `pid` (tid = span track).
    pub fn add_spans(&mut self, pid: u32, spans: &[SpanRecord]) {
        for s in spans {
            self.complete(
                pid,
                &s.track,
                &s.name,
                s.start_s * 1e6,
                (s.dur_s * 1e6).max(0.001),
            );
        }
    }

    /// Add every event as an instant in track group `pid` on one row.
    pub fn add_events(&mut self, pid: u32, tid: &str, events: &[EventRecord]) {
        for e in events {
            let args: Vec<(&str, String)> = e
                .args
                .iter()
                .map(|(k, v)| (k.as_str(), v.clone()))
                .collect();
            self.instant(pid, tid, &e.name, e.ts_s * 1e6, &args);
        }
    }

    /// Serialize as `{"traceEvents":[...]}`.
    pub fn finish(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        out.push_str(&self.events.join(","));
        out.push_str("]}");
        out
    }
}

fn push_args(ev: &mut String, args: &[(&str, String)]) {
    if args.is_empty() {
        return;
    }
    ev.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            ev.push(',');
        }
        let _ = write!(ev, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
    }
    ev.push('}');
}

impl MetricsSnapshot {
    /// Serialize as a JSON document:
    /// `{"counters":{...},"gauges":{...},"histograms":{name:{count,...}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(k));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(k), json_num(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"total\":{},\"mean\":{},\"min\":{},\"p50\":{},\"p95\":{},\"max\":{}}}",
                json_escape(k),
                h.count,
                json_num(h.total),
                json_num(h.mean),
                json_num(h.min),
                json_num(h.p50),
                json_num(h.p95),
                json_num(h.max),
            );
        }
        out.push_str("}}");
        out
    }

    /// Serialize as CSV with one row per metric:
    /// `kind,name,value,count,total,mean,min,p50,p95,max`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,value,count,total,mean,min,p50,p95,max\n");
        for (k, v) in &self.counters {
            let _ = writeln!(out, "counter,{},{v},,,,,,,", csv_field(k));
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "gauge,{},{v},,,,,,,", csv_field(k));
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram,{},,{},{},{},{},{},{},{}",
                csv_field(k),
                h.count,
                h.total,
                h.mean,
                h.min,
                h.p50,
                h.p95,
                h.max
            );
        }
        out
    }
}

/// Render a float as a JSON-legal number (JSON has no NaN/Infinity).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Strict JSON syntax check (objects, arrays, strings, numbers, literals).
///
/// Returns the byte offset of the first syntax error, if any. This exists
/// so the workspace can assert its emitted artifacts parse without pulling
/// a JSON dependency into test builds.
pub fn validate_json(s: &str) -> Result<(), usize> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    p.value()?;
    p.ws();
    if p.i == b.len() {
        Ok(())
    } else {
        Err(p.i)
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), usize> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.i)
        }
    }

    fn value(&mut self) -> Result<(), usize> {
        match self.peek().ok_or(self.i)? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string(),
            b't' => self.literal(b"true"),
            b'f' => self.literal(b"false"),
            b'n' => self.literal(b"null"),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.i),
        }
    }

    fn literal(&mut self, lit: &[u8]) -> Result<(), usize> {
        if self.b[self.i..].starts_with(lit) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.i)
        }
    }

    fn object(&mut self) -> Result<(), usize> {
        self.eat(b'{')?;
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            self.value()?;
            self.ws();
            match self.peek().ok_or(self.i)? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.i),
            }
        }
    }

    fn array(&mut self) -> Result<(), usize> {
        self.eat(b'[')?;
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.value()?;
            self.ws();
            match self.peek().ok_or(self.i)? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.i),
            }
        }
    }

    fn string(&mut self) -> Result<(), usize> {
        self.eat(b'"')?;
        while let Some(c) = self.peek() {
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(());
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek().ok_or(self.i)? {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => self.i += 1,
                        b'u' => {
                            self.i += 1;
                            for _ in 0..4 {
                                if !self.peek().is_some_and(|h| h.is_ascii_hexdigit()) {
                                    return Err(self.i);
                                }
                                self.i += 1;
                            }
                        }
                        _ => return Err(self.i),
                    }
                }
                0x00..=0x1f => return Err(self.i),
                _ => self.i += 1,
            }
        }
        Err(self.i)
    }

    fn number(&mut self) -> Result<(), usize> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.i += 1;
                // Strict JSON: no leading zeros.
                if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    return Err(self.i);
                }
            }
            Some(c) if c.is_ascii_digit() => {
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.i += 1;
                }
            }
            _ => return Err(start),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            let mut frac = 0;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(self.i);
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            let mut exp = 0;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(self.i);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn escaper_handles_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn validator_accepts_and_rejects() {
        assert!(validate_json("{\"a\":[1,2.5,-3e4],\"b\":\"x\\\"y\",\"c\":null}").is_ok());
        assert!(validate_json("  [true, false] ").is_ok());
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("{'a':1}").is_err());
        assert!(validate_json("{\"a\":1,}").is_err());
        assert!(validate_json("[1 2]").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("01").is_err()); // trailing garbage after 0
    }

    #[test]
    fn chrome_trace_with_two_track_groups_is_valid_json() {
        let mut t = ChromeTrace::new();
        t.process_name(1, "modeled");
        t.process_name(2, "measured");
        t.complete(1, "cpu", "B1", 0.0, 10.0);
        t.complete_with_args(2, "cpu-pool", "B1", 1.0, 9.0, &[("chunk", "0".into())]);
        t.instant(1, "sched", "decision", 0.0, &[("placement", "acc".into())]);
        let json = t.finish();
        validate_json(&json).unwrap_or_else(|p| panic!("invalid JSON at byte {p}: {json}"));
        assert!(json.contains("\"pid\":1") && json.contains("\"pid\":2"));
        assert!(json.contains("modeled") && json.contains("measured"));
    }

    #[test]
    fn hostile_names_stay_valid_json() {
        let mut t = ChromeTrace::new();
        t.complete(1, "tid\"quote", "name\\back\nslash", 0.5, 1.5);
        let json = t.finish();
        validate_json(&json).unwrap_or_else(|p| panic!("invalid JSON at byte {p}: {json}"));
    }

    #[test]
    fn spans_and_events_export_to_trace() {
        let rec = Recorder::new();
        {
            let _a = rec.span("main", "step");
            let _b = rec.span("main", "kernel");
        }
        rec.event("sched.decision", &[("task", "A1".to_string())]);
        let mut t = ChromeTrace::new();
        t.process_name(2, "measured");
        t.add_spans(2, &rec.spans());
        t.add_events(2, "sched", &rec.events());
        let json = t.finish();
        validate_json(&json).unwrap_or_else(|p| panic!("invalid JSON at byte {p}"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
    }

    #[test]
    fn snapshot_json_and_csv_roundtrip_shapes() {
        let rec = Recorder::new();
        rec.add("msg.halo.bytes_sent", 4096);
        rec.set_gauge("core.sim.mass_drift", -3.5e-15);
        rec.record("hybrid.kernel.A1.seconds", 0.001);
        rec.record("hybrid.kernel.A1.seconds", 0.002);
        let snap = rec.snapshot();
        let json = snap.to_json();
        validate_json(&json).unwrap_or_else(|p| panic!("invalid JSON at byte {p}: {json}"));
        assert!(json.contains("\"msg.halo.bytes_sent\":4096"));
        assert!(json.contains("\"count\":2"));
        let csv = snap.to_csv();
        assert!(csv.lines().count() == 4); // header + 3 metrics
        assert!(csv.starts_with("kind,name,value"));
        assert!(csv.contains("counter,msg.halo.bytes_sent,4096"));
    }

    #[test]
    fn empty_snapshot_serializes_cleanly() {
        let snap = Recorder::noop().snapshot();
        assert!(validate_json(&snap.to_json()).is_ok());
        assert_eq!(snap.to_csv().lines().count(), 1);
    }

    #[test]
    fn nonfinite_gauges_become_null() {
        let rec = Recorder::new();
        rec.set_gauge("bad", f64::NAN);
        let json = rec.snapshot().to_json();
        assert!(validate_json(&json).is_ok());
        assert!(json.contains("\"bad\":null"));
    }
}
