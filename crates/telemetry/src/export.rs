//! Exporters: Chrome-trace (Perfetto) JSON, metrics snapshots as JSON and
//! CSV, and the shared JSON string escaper.
//!
//! The Chrome trace-event format puts every slice on a `(pid, tid)` row;
//! Perfetto renders each `pid` as a collapsible *track group* named by its
//! `process_name` metadata event. [`ChromeTrace`] exploits that to carry a
//! **modeled** schedule (pid 1) and the **measured** execution (pid 2) in
//! one file — the paper's Fig. 4 comparison, diffable in one viewer window.
//!
//! Everything here is hand-rolled JSON (the crate is dependency-free);
//! [`json_escape`] is the single escaper every writer in the workspace
//! shares, and [`validate_json`] is a strict syntax checker used by tests
//! and the CI smoke job to prove emitted artifacts parse.

use crate::{EventRecord, MetricsSnapshot, SpanRecord};
use std::fmt::Write as _;

/// Escape a string for embedding inside a JSON string literal
/// (quotes, backslashes, and control characters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Builder for a Chrome trace-event JSON document with named track groups.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Name the track group `pid` (a `process_name` metadata event).
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
    }

    /// Add a complete slice (`ph:"X"`) on row `(pid, tid)`.
    pub fn complete(&mut self, pid: u32, tid: &str, name: &str, ts_us: f64, dur_us: f64) {
        self.complete_with_args(pid, tid, name, ts_us, dur_us, &[]);
    }

    /// Add a complete slice with key/value `args`.
    pub fn complete_with_args(
        &mut self,
        pid: u32,
        tid: &str,
        name: &str,
        ts_us: f64,
        dur_us: f64,
        args: &[(&str, String)],
    ) {
        let mut ev = format!(
            "{{\"name\":\"{}\",\"cat\":\"pattern\",\"ph\":\"X\",\"ts\":{ts_us:.3},\"dur\":{dur_us:.3},\"pid\":{pid},\"tid\":\"{}\"",
            json_escape(name),
            json_escape(tid),
        );
        push_args(&mut ev, args);
        ev.push('}');
        self.events.push(ev);
    }

    /// Add a counter sample (`ph:"C"`) — trace viewers render these as a
    /// value-over-time track named `name` (the flight recorder uses this
    /// for gauge/counter history).
    pub fn counter(&mut self, pid: u32, name: &str, ts_us: f64, value: f64) {
        self.events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{ts_us:.3},\"pid\":{pid},\"args\":{{\"value\":{}}}}}",
            json_escape(name),
            json_num(value),
        ));
    }

    /// Add an instantaneous event (`ph:"i"`) with key/value `args`.
    pub fn instant(
        &mut self,
        pid: u32,
        tid: &str,
        name: &str,
        ts_us: f64,
        args: &[(&str, String)],
    ) {
        let mut ev = format!(
            "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts_us:.3},\"pid\":{pid},\"tid\":\"{}\"",
            json_escape(name),
            json_escape(tid),
        );
        push_args(&mut ev, args);
        ev.push('}');
        self.events.push(ev);
    }

    /// Add every span as a slice in track group `pid` (tid = span track).
    pub fn add_spans(&mut self, pid: u32, spans: &[SpanRecord]) {
        for s in spans {
            self.complete(
                pid,
                &s.track,
                &s.name,
                s.start_s * 1e6,
                (s.dur_s * 1e6).max(0.001),
            );
        }
    }

    /// Add every event as an instant in track group `pid` on one row.
    pub fn add_events(&mut self, pid: u32, tid: &str, events: &[EventRecord]) {
        for e in events {
            let args: Vec<(&str, String)> = e
                .args
                .iter()
                .map(|(k, v)| (k.as_str(), v.clone()))
                .collect();
            self.instant(pid, tid, &e.name, e.ts_s * 1e6, &args);
        }
    }

    /// Serialize as `{"traceEvents":[...]}`.
    pub fn finish(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        out.push_str(&self.events.join(","));
        out.push_str("]}");
        out
    }
}

fn push_args(ev: &mut String, args: &[(&str, String)]) {
    if args.is_empty() {
        return;
    }
    ev.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            ev.push(',');
        }
        let _ = write!(ev, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
    }
    ev.push('}');
}

impl MetricsSnapshot {
    /// Serialize as a JSON document:
    /// `{"counters":{...},"gauges":{...},"histograms":{name:{count,...}},"windows":{name:{window_s,...}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(k));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(k), json_num(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"mean\":{},\"min\":{},\"p50\":{},\"p95\":{},\"max\":{}}}",
                json_escape(k),
                h.count,
                json_num(h.sum),
                json_num(h.mean),
                json_num(h.min),
                json_num(h.p50),
                json_num(h.p95),
                json_num(h.max),
            );
        }
        out.push_str("},\"windows\":{");
        for (i, (k, w)) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"window_s\":{},\"count\":{},\"sum\":{},\"mean\":{},\"min\":{},\"p50\":{},\"p95\":{},\"max\":{},\"rate_per_s\":{},\"ewma\":{}}}",
                json_escape(k),
                json_num(w.window_s),
                w.count,
                json_num(w.sum),
                json_num(w.mean),
                json_num(w.min),
                json_num(w.p50),
                json_num(w.p95),
                json_num(w.max),
                json_num(w.rate_per_s),
                json_num(w.ewma),
            );
        }
        out.push_str("}}");
        out
    }

    /// Serialize as CSV with one row per metric:
    /// `kind,name,value,count,sum,mean,min,p50,p95,max`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,value,count,sum,mean,min,p50,p95,max\n");
        for (k, v) in &self.counters {
            let _ = writeln!(out, "counter,{},{v},,,,,,,", csv_field(k));
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "gauge,{},{v},,,,,,,", csv_field(k));
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram,{},,{},{},{},{},{},{},{}",
                csv_field(k),
                h.count,
                h.sum,
                h.mean,
                h.min,
                h.p50,
                h.p95,
                h.max
            );
        }
        for (k, w) in &self.windows {
            // `value` carries the windowed rate; the summary columns line
            // up with the histogram rows.
            let _ = writeln!(
                out,
                "window,{},{},{},{},{},{},{},{},{}",
                csv_field(k),
                w.rate_per_s,
                w.count,
                w.sum,
                w.mean,
                w.min,
                w.p50,
                w.p95,
                w.max
            );
        }
        out
    }
}

/// Render a float as a JSON-legal number (JSON has no NaN/Infinity).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// A parsed JSON value (the dependency-free reader half of this module).
///
/// Objects keep their key order as a `Vec` of pairs — the workspace's
/// documents are small enough that linear [`get`](JsonValue::get) beats a
/// map, and order-preservation makes round-trip tests deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string, with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member of an object by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document into a [`JsonValue`].
///
/// Strict syntax (same grammar [`validate_json`] enforces); the error is
/// the byte offset of the first syntax error.
pub fn parse_json(s: &str) -> Result<JsonValue, usize> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i == b.len() {
        Ok(v)
    } else {
        Err(p.i)
    }
}

/// Strict JSON syntax check (objects, arrays, strings, numbers, literals).
///
/// Returns the byte offset of the first syntax error, if any. This exists
/// so the workspace can assert its emitted artifacts parse without pulling
/// a JSON dependency into test builds.
pub fn validate_json(s: &str) -> Result<(), usize> {
    parse_json(s).map(|_| ())
}

/// Validate newline-delimited JSON (the `/metrics/stream` wire format):
/// every non-empty line must be one complete JSON document.
///
/// Returns the number of non-empty lines validated; on failure,
/// `(line, byte)` — the **1-based line number** of the first offending
/// line and the byte offset of the error within that line. `swe_load`
/// self-checks each streamed snapshot line with this.
pub fn validate_ndjson(s: &str) -> Result<usize, (usize, usize)> {
    let mut n = 0;
    for (i, line) in s.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_json(line).map_err(|at| (i + 1, at))?;
        n += 1;
    }
    Ok(n)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), usize> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.i)
        }
    }

    fn value(&mut self) -> Result<JsonValue, usize> {
        match self.peek().ok_or(self.i)? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(JsonValue::Str),
            b't' => self.literal(b"true").map(|_| JsonValue::Bool(true)),
            b'f' => self.literal(b"false").map(|_| JsonValue::Bool(false)),
            b'n' => self.literal(b"null").map(|_| JsonValue::Null),
            b'-' | b'0'..=b'9' => self.number().map(JsonValue::Num),
            _ => Err(self.i),
        }
    }

    fn literal(&mut self, lit: &[u8]) -> Result<(), usize> {
        if self.b[self.i..].starts_with(lit) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.i)
        }
    }

    fn object(&mut self) -> Result<JsonValue, usize> {
        self.eat(b'{')?;
        self.ws();
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.ws();
            match self.peek().ok_or(self.i)? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.i),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, usize> {
        self.eat(b'[')?;
        self.ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek().ok_or(self.i)? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.i),
            }
        }
    }

    fn string(&mut self) -> Result<String, usize> {
        self.eat(b'"')?;
        let mut out = String::new();
        while let Some(c) = self.peek() {
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek().ok_or(self.i)? {
                        c @ (b'"' | b'\\' | b'/') => {
                            out.push(c as char);
                            self.i += 1;
                        }
                        b'b' => {
                            out.push('\u{8}');
                            self.i += 1;
                        }
                        b'f' => {
                            out.push('\u{c}');
                            self.i += 1;
                        }
                        b'n' => {
                            out.push('\n');
                            self.i += 1;
                        }
                        b'r' => {
                            out.push('\r');
                            self.i += 1;
                        }
                        b't' => {
                            out.push('\t');
                            self.i += 1;
                        }
                        b'u' => {
                            self.i += 1;
                            let cp = self.hex4()?;
                            // Surrogate pair: a high surrogate must be
                            // followed by \u-escaped low surrogate.
                            let ch = if (0xd800..0xdc00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.i += 1;
                                    self.eat(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.i);
                                    }
                                    let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(c).ok_or(self.i)?
                                } else {
                                    return Err(self.i);
                                }
                            } else {
                                char::from_u32(cp).ok_or(self.i)?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.i),
                    }
                }
                0x00..=0x1f => return Err(self.i),
                _ => {
                    // Copy one UTF-8 scalar (the input is a &str, so byte
                    // boundaries are already valid).
                    let rest = &self.b[self.i..];
                    let len = utf8_len(rest[0]);
                    out.push_str(std::str::from_utf8(&rest[..len]).map_err(|_| self.i)?);
                    self.i += len;
                }
            }
        }
        Err(self.i)
    }

    fn hex4(&mut self) -> Result<u32, usize> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let h = self.peek().ok_or(self.i)?;
            let d = (h as char).to_digit(16).ok_or(self.i)?;
            cp = cp * 16 + d;
            self.i += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<f64, usize> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.i += 1;
                // Strict JSON: no leading zeros.
                if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    return Err(self.i);
                }
            }
            Some(c) if c.is_ascii_digit() => {
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.i += 1;
                }
            }
            _ => return Err(start),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            let mut frac = 0;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(self.i);
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            let mut exp = 0;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(self.i);
            }
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or(start)
    }
}

/// Length in bytes of the UTF-8 sequence starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn escaper_handles_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn validator_accepts_and_rejects() {
        assert!(validate_json("{\"a\":[1,2.5,-3e4],\"b\":\"x\\\"y\",\"c\":null}").is_ok());
        assert!(validate_json("  [true, false] ").is_ok());
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("{'a':1}").is_err());
        assert!(validate_json("{\"a\":1,}").is_err());
        assert!(validate_json("[1 2]").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("01").is_err()); // trailing garbage after 0
    }

    #[test]
    fn chrome_trace_with_two_track_groups_is_valid_json() {
        let mut t = ChromeTrace::new();
        t.process_name(1, "modeled");
        t.process_name(2, "measured");
        t.complete(1, "cpu", "B1", 0.0, 10.0);
        t.complete_with_args(2, "cpu-pool", "B1", 1.0, 9.0, &[("chunk", "0".into())]);
        t.instant(1, "sched", "decision", 0.0, &[("placement", "acc".into())]);
        let json = t.finish();
        validate_json(&json).unwrap_or_else(|p| panic!("invalid JSON at byte {p}: {json}"));
        assert!(json.contains("\"pid\":1") && json.contains("\"pid\":2"));
        assert!(json.contains("modeled") && json.contains("measured"));
    }

    #[test]
    fn hostile_names_stay_valid_json() {
        let mut t = ChromeTrace::new();
        t.complete(1, "tid\"quote", "name\\back\nslash", 0.5, 1.5);
        let json = t.finish();
        validate_json(&json).unwrap_or_else(|p| panic!("invalid JSON at byte {p}: {json}"));
    }

    #[test]
    fn spans_and_events_export_to_trace() {
        let rec = Recorder::new();
        {
            let _a = rec.span("main", "step");
            let _b = rec.span("main", "kernel");
        }
        rec.event("sched.decision", &[("task", "A1".to_string())]);
        let mut t = ChromeTrace::new();
        t.process_name(2, "measured");
        t.add_spans(2, &rec.spans());
        t.add_events(2, "sched", &rec.events());
        let json = t.finish();
        validate_json(&json).unwrap_or_else(|p| panic!("invalid JSON at byte {p}"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
    }

    #[test]
    fn snapshot_json_and_csv_roundtrip_shapes() {
        let rec = Recorder::new();
        rec.add("msg.halo.bytes_sent", 4096);
        rec.set_gauge("core.sim.mass_drift", -3.5e-15);
        rec.record("hybrid.kernel.A1.seconds", 0.001);
        rec.record("hybrid.kernel.A1.seconds", 0.002);
        let snap = rec.snapshot();
        let json = snap.to_json();
        validate_json(&json).unwrap_or_else(|p| panic!("invalid JSON at byte {p}: {json}"));
        assert!(json.contains("\"msg.halo.bytes_sent\":4096"));
        assert!(json.contains("\"count\":2"));
        let csv = snap.to_csv();
        assert!(csv.lines().count() == 4); // header + 3 metrics
        assert!(csv.starts_with("kind,name,value"));
        assert!(csv.contains("counter,msg.halo.bytes_sent,4096"));
    }

    #[test]
    fn empty_snapshot_serializes_cleanly() {
        let snap = Recorder::noop().snapshot();
        assert!(validate_json(&snap.to_json()).is_ok());
        assert_eq!(snap.to_csv().lines().count(), 1);
    }

    #[test]
    fn parse_json_builds_values() {
        let v = parse_json("{\"a\":[1,2.5,-3e4],\"b\":\"x\\\"y\\u0041\",\"c\":null,\"d\":true}")
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-3e4)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\"yA"));
        assert_eq!(v.get("c"), Some(&JsonValue::Null));
        assert_eq!(v.get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_json_handles_surrogate_pairs_and_unicode() {
        let v = parse_json("\"\\ud83d\\ude00 caf\u{e9}\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1f600} caf\u{e9}"));
        // Lone high surrogate is rejected.
        assert!(parse_json("\"\\ud83d\"").is_err());
    }

    #[test]
    fn snapshot_json_parses_back_with_sum() {
        let rec = Recorder::new();
        rec.record("m", 1.0);
        rec.record("m", 3.0);
        let v = parse_json(&rec.snapshot().to_json()).unwrap();
        let h = v.get("histograms").unwrap().get("m").unwrap();
        assert_eq!(h.get("count").unwrap().as_f64(), Some(2.0));
        assert_eq!(h.get("sum").unwrap().as_f64(), Some(4.0));
    }

    #[test]
    fn ndjson_validator_counts_lines_and_locates_errors() {
        assert_eq!(validate_ndjson(""), Ok(0));
        assert_eq!(validate_ndjson("{\"a\":1}\n[2,3]\n\n{\"b\":4}\n"), Ok(3));
        // Line 2 is broken at byte 5 (`,]` after the 2).
        assert_eq!(validate_ndjson("{\"a\":1}\n[1,2,]\n{\"b\":4}"), Err((2, 5)));
        // Blank lines don't shift the reported line number.
        assert_eq!(validate_ndjson("\n\nnot json"), Err((3, 0)));
    }

    #[test]
    fn windows_serialize_to_json_and_csv() {
        let rec = Recorder::new();
        rec.rolling_window("w.metric", 30.0);
        rec.record("w.metric", 1.5);
        rec.record("w.metric", 2.5);
        let snap = rec.snapshot();
        let json = snap.to_json();
        validate_json(&json).unwrap_or_else(|p| panic!("invalid JSON at byte {p}: {json}"));
        let v = parse_json(&json).unwrap();
        let w = v.get("windows").unwrap().get("w.metric").unwrap();
        assert_eq!(w.get("count").unwrap().as_f64(), Some(2.0));
        assert_eq!(w.get("window_s").unwrap().as_f64(), Some(30.0));
        assert!(w.get("ewma").unwrap().as_f64().is_some());
        let csv = snap.to_csv();
        assert!(csv.contains("window,w.metric,"));
    }

    #[test]
    fn chrome_counter_events_are_valid() {
        let mut t = ChromeTrace::new();
        t.counter(3, "queue.depth", 1000.0, 4.0);
        t.counter(3, "bad", 2000.0, f64::NAN);
        let json = t.finish();
        validate_json(&json).unwrap_or_else(|p| panic!("invalid JSON at byte {p}: {json}"));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"value\":null"));
    }

    #[test]
    fn nonfinite_gauges_become_null() {
        let rec = Recorder::new();
        rec.set_gauge("bad", f64::NAN);
        let json = rec.snapshot().to_json();
        assert!(validate_json(&json).is_ok());
        assert!(json.contains("\"bad\":null"));
    }
}
