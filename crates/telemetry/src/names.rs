//! Well-known metric names shared across crates.
//!
//! Most instrumentation names its metrics inline (`crate.subsystem.name`,
//! DESIGN.md §8); the constants here are the ones that cross a crate
//! boundary — recorded in one layer and asserted on, gated, or exported by
//! another — so a rename cannot silently decouple producer and consumer.
//! The serving stack (`mpas-server`, `swe_serve`/`swe_load`) is the main
//! client: its cache layer records build costs and hit rates that the
//! concurrency tests and the CI perf gate read back by these exact names.

/// Counter: artifact-cache lookups that found a ready shared artifact.
pub const SERVER_CACHE_HIT: &str = "server.cache.hit";

/// Counter: artifact-cache lookups that had to build the artifact. The
/// concurrency acceptance test pins the mesh component of this to exactly
/// one build for N identical tenants (see [`SERVER_CACHE_MESH_MISS`]).
pub const SERVER_CACHE_MISS: &str = "server.cache.miss";

/// Counter: cache misses that built a shared mesh.
pub const SERVER_CACHE_MESH_MISS: &str = "server.cache.mesh.miss";

/// Counter: cache misses that built a shared coefficient table.
pub const SERVER_CACHE_COEFFS_MISS: &str = "server.cache.coeffs.miss";

/// Gauge: wall-clock milliseconds the last shared-mesh build took
/// (cold-start cost of a mesh cache miss).
pub const MESH_BUILD_MS: &str = "server.cache.mesh.build_ms";

/// Gauge: wall-clock milliseconds the last fused-coefficient build took
/// (cold-start cost of a coefficient cache miss).
pub const COEFFS_BUILD_MS: &str = "server.cache.coeffs.build_ms";

/// Gauge: jobs currently waiting in worker queues (backpressure signal;
/// submissions beyond the configured capacity are rejected with 429).
pub const SERVER_QUEUE_DEPTH: &str = "server.queue.depth";

/// Counter: jobs accepted into the queue.
pub const SERVER_JOBS_SUBMITTED: &str = "server.jobs.submitted";

/// Counter: jobs that ran to completion.
pub const SERVER_JOBS_COMPLETED: &str = "server.jobs.completed";

/// Counter: submissions rejected with 429 because the queue was full.
pub const SERVER_JOBS_REJECTED: &str = "server.jobs.rejected";

/// Counter: jobs cancelled (queued or mid-run).
pub const SERVER_JOBS_CANCELLED: &str = "server.jobs.cancelled";

/// Counter: jobs that ended in an error.
pub const SERVER_JOBS_FAILED: &str = "server.jobs.failed";

/// Gauge: load-generator throughput in completed jobs per second
/// (`swe_load`; gated with a lower-is-worse [`crate::gate::Direction`]).
pub const SERVE_JOBS_PER_SEC: &str = "serve.jobs_per_sec";

/// Gauge: load-generator p95 time-to-first-step in milliseconds
/// (server-side submit → first completed step; higher-is-worse gate).
pub const SERVE_TTFS_P95_MS: &str = "serve.ttfs_p95_ms";

/// Gauge: load-generator p95 end-to-end job latency in milliseconds.
pub const SERVE_LATENCY_P95_MS: &str = "serve.latency_p95_ms";

/// Counter: flight-recorder dumps written (on demand or on an invariant
/// alert; the dump-on-anomaly test pins this to exactly one per alerted
/// metric).
pub const FLIGHT_DUMPS: &str = "telemetry.flight.dumps";

/// Histogram: seconds a job sat in a worker queue between submission and
/// pickup (windowed by the server, so live queue pressure is queryable).
pub const SERVER_QUEUE_WAIT_SECONDS: &str = "server.queue.wait_seconds";

/// Histogram: seconds spent serving one live-telemetry request or stream
/// tick (`/jobs/{id}/telemetry`, `/jobs/{id}/flight`, `/metrics/stream`);
/// the server registers a rolling window on it so live-endpoint latency
/// is itself live-observable.
pub const SERVER_LIVE_SECONDS: &str = "server.live.request_seconds";

/// Gauge: load-generator p95 latency in milliseconds of the live
/// `/jobs/{id}/telemetry` endpoint sampled during job polling
/// (`swe_load`'s streaming-latency column).
pub const SERVE_LIVE_P95_MS: &str = "serve.live_p95_ms";

/// Gauge: per-layer throughput gain of the vertical-batching SIMD tier
/// over the fused serial path — `(fused seconds/step · k) / (simd
/// seconds/step at k layers)`, both measured in the same `swe_run`
/// invocation. The committed perf gate fails below 2.0× at level 6, k=4
/// (DESIGN.md §14).
pub const KERNEL_SIMD_SPEEDUP_SERIAL: &str = "kernel.simd_speedup_serial";

/// Gauge: load-generator median latency in milliseconds of the live
/// `/jobs/{id}/telemetry` endpoint (p95 sibling:
/// [`SERVE_LIVE_P95_MS`]); recorded into the history store so serving
/// latency is queryable alongside solver metrics.
pub const SERVE_LIVE_P50_MS: &str = "serve.live_p50_ms";

/// Counter: completed jobs whose scoped telemetry was flushed into the
/// server's history store (`--history-dir`); the history-route tests
/// poll it to know a flush landed.
pub const SERVER_HISTORY_RECORDED: &str = "server.history.recorded";
