//! Embedded telemetry history store: per-run append-only shards with a
//! downsampling ladder, retention, and a coarsest-exact-level query API.
//!
//! Every observability surface so far (metrics snapshots, blame reports,
//! the flight recorder, live windows) describes a *single run in flight*.
//! This module persists those snapshots across runs so "did level-6 k=4
//! SIMD get slower since last week" becomes a query instead of a human
//! diffing JSON files. It is deliberately embedded and dependency-free:
//! plain directories and NDJSON under a `--history-dir`, written once per
//! run, read by [`crate::diagnose`] and the `swe_diag` CLI.
//!
//! # Layout
//!
//! ```text
//! <history-dir>/runs/r000042/
//!   manifest.json   run identity: case/level/backend/layers/policy/
//!                   executor/ranks/steps + git describe + config digest
//!   raw.ndjson      ladder level 0: one line per metric, full samples
//!   steps.ndjson    ladder level 1: per-step chunk summaries
//!   summary.json    ladder level 2: one summary per metric (always kept)
//! ```
//!
//! Run ids are zero-padded sequence numbers, so lexicographic order is
//! recording order. `manifest.json` is written last and acts as the
//! commit marker: a directory without one is an aborted flush and is
//! ignored by [`HistoryStore::runs`].
//!
//! # The ladder
//!
//! Each level summarises the one below with the same mergeable shape,
//! [`LadderSummary`] (`count/sum/min/p50/p95/max`):
//!
//! * **raw** — every finite sample, in arrival order;
//! * **steps** — raw split into `ceil(count / manifest.steps)` chunks, so
//!   a per-step histogram (`core.sim.step_seconds`) gets exactly one
//!   chunk per simulated step;
//! * **summary** — one row per metric.
//!
//! `count`, `min`, `max`, `p50` and `p95` in the per-run summary are
//! exact over raw (percentiles use the same nearest-rank rule as
//! [`crate::HistogramSummary`]). `sum` is defined as the *chunk tree*:
//! samples fold left-to-right within a chunk, chunk sums fold
//! left-to-right across the run. That makes the steps and summary levels
//! bitwise-consistent with each other and reproducible from raw, which
//! is what the ladder proptests assert. [`LadderSummary::merge`] keeps
//! count/sum/min/max exact; merged percentiles are count-weighted
//! estimates (clamped to `[min, max]`) and are therefore *never* used to
//! answer a query that demands exactness — the query planner drops to a
//! finer level instead.
//!
//! # Query resolution
//!
//! [`HistoryStore::query`] answers each [`MetricQuery`] from the
//! *coarsest ladder level that is exact* for it:
//!
//! * no sample range → the per-run summary (every [`Agg`] is exact
//!   there, including `Mean = sum/count`);
//! * a range whose endpoints tile exactly onto step chunks, with an
//!   aggregation the chunk shape preserves (`Count/Sum/Mean/Max/Min`) →
//!   the steps shard;
//! * anything else (unaligned range, or `P50/P95` over a range) → raw.
//!
//! The store counts shard reads per level ([`HistoryStore::shard_reads`])
//! so tests can prove that summary-answerable queries over dozens of
//! runs never touch a raw shard.
//!
//! # Retention
//!
//! [`HistoryStore::compact`] enforces a run-count cap (oldest runs are
//! deleted whole) and then a byte budget (oldest runs lose raw + steps
//! shards first). Compaction never rewrites `manifest.json` or
//! `summary.json`, so per-run summaries survive bitwise; a range query
//! against a compacted run reports an error rather than degrading
//! silently.

use crate::digest::Fnv1a;
use crate::export::{parse_json, JsonValue};
use crate::json_escape;
use crate::Recorder;
use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// `git describe --always --dirty` of the working tree, or `"unknown"`.
///
/// Recorded in every [`RunManifest`] so the diagnosis report can say
/// *which code* the regressed run was built from. Shelling out keeps the
/// crate dependency-free; failures (no git, no repo) degrade to
/// `"unknown"` rather than erroring a flush.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// What kind of metric a stored row came from. Determines how
/// [`crate::diagnose`] treats the per-run value (a counter/gauge stores
/// exactly one sample; a histogram stores them all).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter (stored as one sample: the final total).
    Counter,
    /// Last-write-wins gauge (stored as one sample).
    Gauge,
    /// Sample distribution (stored raw, downsampled up the ladder).
    Histogram,
}

impl MetricKind {
    /// Stable wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }

    /// Parse a wire name back.
    pub fn parse(s: &str) -> Option<MetricKind> {
        match s {
            "counter" => Some(MetricKind::Counter),
            "gauge" => Some(MetricKind::Gauge),
            "histogram" => Some(MetricKind::Histogram),
            _ => None,
        }
    }
}

/// Identity of one recorded run: the configuration axes a baseline set
/// is matched on, plus provenance (git describe, config digest, wall
/// time). `run_id`, `config_digest` and `recorded_unix_s` are filled in
/// by [`HistoryStore::record`]; callers set the rest.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Store-assigned id (`r000042`), empty until recorded.
    pub run_id: String,
    /// Scenario label (`"5"`, `"galewsky"`, or `"serve"` for load runs).
    pub case: String,
    /// Icosahedral subdivision level.
    pub level: u32,
    /// Lloyd relaxation sweeps.
    pub lloyd: u32,
    /// Kernel tier (`scalar`/`fused`/`simd`, or `serve` for load runs).
    pub backend: String,
    /// Vertical layers.
    pub layers: usize,
    /// Scheduler policy name.
    pub policy: String,
    /// Executor spec (`serial`, `threaded:N`, ...).
    pub executor: String,
    /// Simulated ranks (0 = single-process run).
    pub ranks: usize,
    /// Steps the run executed; also the per-step ladder chunk target.
    pub steps: usize,
    /// `git describe` of the producing build (provenance, not identity).
    pub git: String,
    /// FNV-1a digest of the identity axes (filled by the store).
    pub config_digest: u64,
    /// Wall-clock seconds since the Unix epoch at flush time.
    pub recorded_unix_s: f64,
}

impl RunManifest {
    /// A manifest with the given identity axes and empty provenance.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        case: &str,
        level: u32,
        lloyd: u32,
        backend: &str,
        layers: usize,
        policy: &str,
        executor: &str,
        ranks: usize,
        steps: usize,
    ) -> RunManifest {
        RunManifest {
            run_id: String::new(),
            case: case.to_string(),
            level,
            lloyd,
            backend: backend.to_string(),
            layers,
            policy: policy.to_string(),
            executor: executor.to_string(),
            ranks,
            steps,
            git: git_describe(),
            config_digest: 0,
            recorded_unix_s: 0.0,
        }
    }

    /// The baseline-matching key: every identity axis, *excluding*
    /// provenance (`git`, digest, timestamp). Two runs with equal keys
    /// are comparable — same case, mesh, backend, layers, policy,
    /// executor, ranks and step count — and only the code or the
    /// environment differs, which is exactly what diagnosis attributes.
    pub fn baseline_key(&self) -> String {
        format!(
            "case={}|level={}|lloyd={}|backend={}|layers={}|policy={}|executor={}|ranks={}|steps={}",
            self.case,
            self.level,
            self.lloyd,
            self.backend,
            self.layers,
            self.policy,
            self.executor,
            self.ranks,
            self.steps,
        )
    }

    /// FNV-1a digest over the identity axes (what `config_digest` holds).
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_bytes(self.baseline_key().as_bytes());
        h.finish()
    }

    /// Look an identity axis up by name (for `key=value` query filters).
    pub fn field(&self, key: &str) -> Option<String> {
        match key {
            "case" => Some(self.case.clone()),
            "level" => Some(self.level.to_string()),
            "lloyd" => Some(self.lloyd.to_string()),
            "backend" => Some(self.backend.clone()),
            "layers" => Some(self.layers.to_string()),
            "policy" => Some(self.policy.clone()),
            "executor" => Some(self.executor.clone()),
            "ranks" => Some(self.ranks.to_string()),
            "steps" => Some(self.steps.to_string()),
            "git" => Some(self.git.clone()),
            _ => None,
        }
    }

    /// Serialise as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"run_id\": \"{}\", \"case\": \"{}\", \"level\": {}, \"lloyd\": {}, \
             \"backend\": \"{}\", \"layers\": {}, \"policy\": \"{}\", \
             \"executor\": \"{}\", \"ranks\": {}, \"steps\": {}, \"git\": \"{}\", \
             \"config_digest\": \"{:016x}\", \"recorded_unix_s\": {}}}",
            json_escape(&self.run_id),
            json_escape(&self.case),
            self.level,
            self.lloyd,
            json_escape(&self.backend),
            self.layers,
            json_escape(&self.policy),
            json_escape(&self.executor),
            self.ranks,
            self.steps,
            json_escape(&self.git),
            self.config_digest,
            fmt_f64(self.recorded_unix_s),
        )
    }

    /// Parse a manifest back from JSON.
    pub fn parse(text: &str) -> Result<RunManifest, String> {
        let v = parse_json(text).map_err(|at| format!("bad manifest JSON at byte {at}"))?;
        let s = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(|x| x.as_str().map(str::to_string))
                .ok_or_else(|| format!("manifest missing string field {k}"))
        };
        let n = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(|x| x.as_f64())
                .ok_or_else(|| format!("manifest missing numeric field {k}"))
        };
        let digest_hex = s("config_digest")?;
        Ok(RunManifest {
            run_id: s("run_id")?,
            case: s("case")?,
            level: n("level")? as u32,
            lloyd: n("lloyd")? as u32,
            backend: s("backend")?,
            layers: n("layers")? as usize,
            policy: s("policy")?,
            executor: s("executor")?,
            ranks: n("ranks")? as usize,
            steps: n("steps")? as usize,
            git: s("git")?,
            config_digest: u64::from_str_radix(&digest_hex, 16)
                .map_err(|_| format!("bad config_digest {digest_hex}"))?,
            recorded_unix_s: n("recorded_unix_s")?,
        })
    }
}

/// The mergeable summary shape every ladder level speaks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderSummary {
    /// Number of samples covered.
    pub count: usize,
    /// Chunk-tree sum (see the module docs for the exact fold order).
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Nearest-rank median (exact at the level it was computed from).
    pub p50: f64,
    /// Nearest-rank 95th percentile.
    pub p95: f64,
    /// Largest sample.
    pub max: f64,
}

/// Nearest-rank percentile over an already-sorted slice, matching
/// [`crate::HistogramSummary`]'s rule (`idx = round((n-1) * q)`).
fn pct_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

impl LadderSummary {
    /// Exact summary of one contiguous slice of samples: left-to-right
    /// sum, nearest-rank percentiles on a sorted copy.
    pub fn from_slice(samples: &[f64]) -> LadderSummary {
        if samples.is_empty() {
            return LadderSummary {
                count: 0,
                sum: 0.0,
                min: f64::NAN,
                p50: f64::NAN,
                p95: f64::NAN,
                max: f64::NAN,
            };
        }
        let sum = samples.iter().fold(0.0_f64, |a, b| a + b);
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        LadderSummary {
            count: samples.len(),
            sum,
            min: sorted[0],
            p50: pct_sorted(&sorted, 0.50),
            p95: pct_sorted(&sorted, 0.95),
            max: *sorted.last().unwrap(),
        }
    }

    /// Merge summaries of disjoint sample sets. `count`, `sum` (left
    /// fold over part sums, i.e. the chunk tree), `min` and `max` are
    /// exact; `p50`/`p95` are count-weighted averages clamped to
    /// `[min, max]` — estimates only, never used for exact answers.
    pub fn merge(parts: &[LadderSummary]) -> LadderSummary {
        let parts: Vec<&LadderSummary> = parts.iter().filter(|p| p.count > 0).collect();
        if parts.is_empty() {
            return LadderSummary::from_slice(&[]);
        }
        let count: usize = parts.iter().map(|p| p.count).sum();
        let sum = parts.iter().fold(0.0_f64, |a, p| a + p.sum);
        let min = parts.iter().map(|p| p.min).fold(f64::INFINITY, f64::min);
        let max = parts
            .iter()
            .map(|p| p.max)
            .fold(f64::NEG_INFINITY, f64::max);
        let wavg = |f: fn(&LadderSummary) -> f64| -> f64 {
            let s: f64 = parts.iter().map(|p| f(p) * p.count as f64).sum();
            (s / count as f64).clamp(min, max)
        };
        LadderSummary {
            count,
            sum,
            min,
            p50: wavg(|p| p.p50),
            p95: wavg(|p| p.p95),
            max,
        }
    }

    /// Arithmetic mean (`sum / count`), `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    fn to_json_fields(&self) -> String {
        format!(
            "\"count\": {}, \"sum\": {}, \"min\": {}, \"p50\": {}, \"p95\": {}, \"max\": {}",
            self.count,
            fmt_f64(self.sum),
            fmt_f64(self.min),
            fmt_f64(self.p50),
            fmt_f64(self.p95),
            fmt_f64(self.max),
        )
    }

    fn from_json(v: &JsonValue) -> Result<LadderSummary, String> {
        let n = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(|x| x.as_f64())
                .ok_or_else(|| format!("summary row missing field {k}"))
        };
        Ok(LadderSummary {
            count: n("count")? as usize,
            sum: n("sum")?,
            min: n("min")?,
            p50: n("p50")?,
            p95: n("p95")?,
            max: n("max")?,
        })
    }
}

/// One metric's per-run summary row (ladder level 2).
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRow {
    /// Metric name (scope-stripped at flush time).
    pub metric: String,
    /// Where the samples came from.
    pub kind: MetricKind,
    /// Exact per-run summary (chunk-tree sum, exact percentiles).
    pub summary: LadderSummary,
}

/// One per-step chunk row (ladder level 1).
#[derive(Debug, Clone, PartialEq)]
pub struct StepRow {
    /// Index of the chunk's first sample in the raw shard.
    pub start: usize,
    /// Exact summary of the chunk's samples.
    pub summary: LadderSummary,
}

/// Aggregation a [`MetricQuery`] asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Sample count.
    Count,
    /// Chunk-tree sum.
    Sum,
    /// `sum / count`.
    Mean,
    /// Nearest-rank median.
    P50,
    /// Nearest-rank 95th percentile.
    P95,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
}

impl Agg {
    /// Stable wire name (query-string values of `/history/query`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Agg::Count => "count",
            Agg::Sum => "sum",
            Agg::Mean => "mean",
            Agg::P50 => "p50",
            Agg::P95 => "p95",
            Agg::Max => "max",
            Agg::Min => "min",
        }
    }

    /// Parse a wire name back.
    pub fn parse(s: &str) -> Option<Agg> {
        match s {
            "count" => Some(Agg::Count),
            "sum" => Some(Agg::Sum),
            "mean" => Some(Agg::Mean),
            "p50" => Some(Agg::P50),
            "p95" => Some(Agg::P95),
            "max" => Some(Agg::Max),
            "min" => Some(Agg::Min),
            _ => None,
        }
    }

    fn of(&self, s: &LadderSummary) -> f64 {
        match self {
            Agg::Count => s.count as f64,
            Agg::Sum => s.sum,
            Agg::Mean => s.mean(),
            Agg::P50 => s.p50,
            Agg::P95 => s.p95,
            Agg::Max => s.max,
            Agg::Min => s.min,
        }
    }

    /// Aggregations the steps level preserves exactly when chunks tile
    /// the requested range (percentiles need raw).
    fn steps_exact(&self) -> bool {
        matches!(
            self,
            Agg::Count | Agg::Sum | Agg::Mean | Agg::Max | Agg::Min
        )
    }
}

/// Which runs a query ranges over. Filters compose: explicit ids, then
/// `key=value` manifest matches, then `last_n` keeps the newest.
#[derive(Debug, Clone, Default)]
pub struct RunFilter {
    /// Keep only these run ids (empty = all).
    pub run_ids: Vec<String>,
    /// Keep only runs whose manifest matches every `(key, value)` pair
    /// (keys as accepted by [`RunManifest::field`]).
    pub keys: Vec<(String, String)>,
    /// After other filters, keep only the most recent N runs.
    pub last_n: Option<usize>,
}

/// A history query: metric prefix × run filter × optional sample range
/// × aggregation.
#[derive(Debug, Clone)]
pub struct MetricQuery {
    /// Keep metrics whose name starts with this (empty = all).
    pub name_prefix: String,
    /// Which runs to answer over.
    pub run_filter: RunFilter,
    /// Half-open raw-sample index range `[start, end)`; `None` = whole
    /// run (answerable from the summary level).
    pub range: Option<(usize, usize)>,
    /// The aggregation to return.
    pub agg: Agg,
}

/// One query answer row, tagged with the ladder level that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRow {
    /// Run the value came from.
    pub run_id: String,
    /// Metric name.
    pub metric: String,
    /// Aggregated value.
    pub value: f64,
    /// `"summary"`, `"steps"` or `"raw"` — which shard answered.
    pub level: &'static str,
}

/// Retention policy for [`HistoryStore::compact`].
#[derive(Debug, Clone, Copy)]
pub struct Retention {
    /// Keep at most this many runs (oldest deleted whole).
    pub max_runs: usize,
    /// Then shed raw + steps shards (oldest first) until total bytes
    /// fit. Summaries and manifests are never deleted by the byte pass.
    pub max_bytes: u64,
}

impl Default for Retention {
    /// The default applied by `swe_run --history-dir`: generous enough
    /// for weeks of smoke runs, bounded enough to forget about.
    fn default() -> Retention {
        Retention {
            max_runs: 256,
            max_bytes: 256 << 20,
        }
    }
}

/// What a compaction pass did.
#[derive(Debug, Clone, Default)]
pub struct CompactionReport {
    /// Runs deleted whole by the run-count cap.
    pub removed_runs: Vec<String>,
    /// Runs whose raw + steps shards were shed by the byte budget.
    pub compacted_runs: Vec<String>,
    /// Total store bytes before the pass.
    pub bytes_before: u64,
    /// Total store bytes after the pass.
    pub bytes_after: u64,
}

/// Per-ladder-level shard read counts for one store handle (not
/// persisted; a fresh handle starts at zero).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardReads {
    /// `summary.json` reads.
    pub summary: u64,
    /// `steps.ndjson` reads.
    pub steps: u64,
    /// `raw.ndjson` reads.
    pub raw: u64,
}

/// Handle on a history directory. Cheap to open, safe to share across
/// threads (`&self` everywhere; read counters are atomics).
#[derive(Debug)]
pub struct HistoryStore {
    root: PathBuf,
    summary_reads: AtomicU64,
    step_reads: AtomicU64,
    raw_reads: AtomicU64,
}

const RAW_SHARD: &str = "raw.ndjson";
const STEPS_SHARD: &str = "steps.ndjson";
const SUMMARY_SHARD: &str = "summary.json";
const MANIFEST: &str = "manifest.json";

impl HistoryStore {
    /// Open (creating if needed) the store rooted at `dir`.
    pub fn open(dir: &Path) -> io::Result<HistoryStore> {
        fs::create_dir_all(dir.join("runs"))?;
        Ok(HistoryStore {
            root: dir.to_path_buf(),
            summary_reads: AtomicU64::new(0),
            step_reads: AtomicU64::new(0),
            raw_reads: AtomicU64::new(0),
        })
    }

    /// The directory this handle is rooted at.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn runs_dir(&self) -> PathBuf {
        self.root.join("runs")
    }

    fn run_dir(&self, run_id: &str) -> PathBuf {
        self.runs_dir().join(run_id)
    }

    /// Shard reads performed through this handle so far.
    pub fn shard_reads(&self) -> ShardReads {
        ShardReads {
            summary: self.summary_reads.load(Ordering::Relaxed),
            steps: self.step_reads.load(Ordering::Relaxed),
            raw: self.raw_reads.load(Ordering::Relaxed),
        }
    }

    /// Raw-shard reads alone (the ladder tests' headline number).
    pub fn raw_shard_reads(&self) -> u64 {
        self.raw_reads.load(Ordering::Relaxed)
    }

    /// All committed runs, oldest first.
    pub fn runs(&self) -> io::Result<Vec<RunManifest>> {
        let mut ids: Vec<String> = Vec::new();
        for entry in fs::read_dir(self.runs_dir())? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            // Only committed runs (manifest written last) count.
            if entry.path().join(MANIFEST).is_file() {
                ids.push(entry.file_name().to_string_lossy().to_string());
            }
        }
        ids.sort();
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            out.push(self.manifest(&id)?);
        }
        Ok(out)
    }

    /// The newest committed run, if any.
    pub fn latest(&self) -> io::Result<Option<RunManifest>> {
        Ok(self.runs()?.pop())
    }

    /// One run's manifest.
    pub fn manifest(&self, run_id: &str) -> io::Result<RunManifest> {
        let text = fs::read_to_string(self.run_dir(run_id).join(MANIFEST))?;
        RunManifest::parse(&text).map_err(invalid)
    }

    /// One run's per-metric summaries (ladder level 2), sorted by name.
    pub fn run_summary(&self, run_id: &str) -> io::Result<Vec<SummaryRow>> {
        self.summary_reads.fetch_add(1, Ordering::Relaxed);
        let text = fs::read_to_string(self.run_dir(run_id).join(SUMMARY_SHARD))?;
        let v =
            parse_json(&text).map_err(|at| invalid(format!("bad summary JSON at byte {at}")))?;
        let rows = v
            .get("metrics")
            .and_then(|m| m.as_arr())
            .ok_or_else(|| invalid("summary missing metrics array"))?;
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            let metric = row
                .get("metric")
                .and_then(|m| m.as_str().map(str::to_string))
                .ok_or_else(|| invalid("summary row missing metric"))?;
            let kind = row
                .get("kind")
                .and_then(|k| k.as_str())
                .and_then(MetricKind::parse)
                .ok_or_else(|| invalid("summary row missing kind"))?;
            let summary = LadderSummary::from_json(row).map_err(invalid)?;
            out.push(SummaryRow {
                metric,
                kind,
                summary,
            });
        }
        Ok(out)
    }

    /// One metric's per-step chunk rows (ladder level 1), or `None` if
    /// the metric was not recorded. Errors if the shard was compacted.
    pub fn run_steps(&self, run_id: &str, metric: &str) -> io::Result<Option<Vec<StepRow>>> {
        self.step_reads.fetch_add(1, Ordering::Relaxed);
        let path = self.run_dir(run_id).join(STEPS_SHARD);
        let text = fs::read_to_string(&path).map_err(|e| compacted(e, run_id, STEPS_SHARD))?;
        let mut out = Vec::new();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let v =
                parse_json(line).map_err(|at| invalid(format!("bad steps row at byte {at}")))?;
            if v.get("metric").and_then(|m| m.as_str()) != Some(metric) {
                continue;
            }
            let start =
                v.get("start")
                    .and_then(|s| s.as_f64())
                    .ok_or_else(|| invalid("steps row missing start"))? as usize;
            out.push(StepRow {
                start,
                summary: LadderSummary::from_json(&v).map_err(invalid)?,
            });
        }
        Ok(if out.is_empty() { None } else { Some(out) })
    }

    /// One metric's raw samples (ladder level 0), or `None` if the
    /// metric was not recorded. Errors if the shard was compacted.
    pub fn run_raw(&self, run_id: &str, metric: &str) -> io::Result<Option<Vec<f64>>> {
        self.raw_reads.fetch_add(1, Ordering::Relaxed);
        let path = self.run_dir(run_id).join(RAW_SHARD);
        let text = fs::read_to_string(&path).map_err(|e| compacted(e, run_id, RAW_SHARD))?;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let v = parse_json(line).map_err(|at| invalid(format!("bad raw row at byte {at}")))?;
            if v.get("metric").and_then(|m| m.as_str()) != Some(metric) {
                continue;
            }
            let arr = v
                .get("samples")
                .and_then(|s| s.as_arr())
                .ok_or_else(|| invalid("raw row missing samples"))?;
            let mut samples = Vec::with_capacity(arr.len());
            for s in arr {
                samples.push(
                    s.as_f64()
                        .ok_or_else(|| invalid("raw sample not a number"))?,
                );
            }
            return Ok(Some(samples));
        }
        Ok(None)
    }

    /// Record one run from explicit metric samples. Assigns the run id,
    /// fills provenance, writes all four shards (manifest last, as the
    /// commit marker) and returns the completed manifest.
    ///
    /// Non-finite samples are dropped before the ladder is built (JSON
    /// has no NaN, and band math filters them anyway); metrics left with
    /// no samples are skipped.
    pub fn record(
        &self,
        manifest: &RunManifest,
        metrics: &BTreeMap<String, (MetricKind, Vec<f64>)>,
    ) -> io::Result<RunManifest> {
        let mut m = manifest.clone();
        m.config_digest = m.digest();
        m.recorded_unix_s = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0);
        let dir = self.claim_run_dir(&mut m)?;

        let chunk_target = m.steps.max(1);
        let mut raw = String::new();
        let mut steps = String::new();
        let mut summary_rows = String::new();
        for (name, (kind, samples)) in metrics {
            let samples: Vec<f64> = samples.iter().copied().filter(|s| s.is_finite()).collect();
            if samples.is_empty() {
                continue;
            }
            // Level 0: the raw shard.
            raw.push_str("{\"metric\": \"");
            raw.push_str(&json_escape(name));
            raw.push_str("\", \"kind\": \"");
            raw.push_str(kind.as_str());
            raw.push_str("\", \"samples\": [");
            for (i, s) in samples.iter().enumerate() {
                if i > 0 {
                    raw.push_str(", ");
                }
                raw.push_str(&fmt_f64(*s));
            }
            raw.push_str("]}\n");
            // Level 1: per-step chunks (ceil(count / steps) wide, so a
            // per-step histogram gets exactly one chunk per step).
            let chunk_len = samples.len().div_ceil(chunk_target).max(1);
            let mut chunks = Vec::new();
            for (ci, chunk) in samples.chunks(chunk_len).enumerate() {
                let s = LadderSummary::from_slice(chunk);
                steps.push_str(&format!(
                    "{{\"metric\": \"{}\", \"start\": {}, {}}}\n",
                    json_escape(name),
                    ci * chunk_len,
                    s.to_json_fields(),
                ));
                chunks.push(s);
            }
            // Level 2: the per-run summary — chunk-tree sum, exact
            // nearest-rank percentiles over the full raw slice.
            let merged = LadderSummary::merge(&chunks);
            let mut sorted = samples.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let run_summary = LadderSummary {
                count: samples.len(),
                sum: merged.sum,
                min: sorted[0],
                p50: pct_sorted(&sorted, 0.50),
                p95: pct_sorted(&sorted, 0.95),
                max: *sorted.last().unwrap(),
            };
            if !summary_rows.is_empty() {
                summary_rows.push_str(",\n    ");
            }
            summary_rows.push_str(&format!(
                "{{\"metric\": \"{}\", \"kind\": \"{}\", {}}}",
                json_escape(name),
                kind.as_str(),
                run_summary.to_json_fields(),
            ));
        }

        write_file(&dir.join(RAW_SHARD), raw.as_bytes())?;
        write_file(&dir.join(STEPS_SHARD), steps.as_bytes())?;
        write_file(
            &dir.join(SUMMARY_SHARD),
            format!(
                "{{\"run_id\": \"{}\", \"metrics\": [\n    {}\n]}}\n",
                json_escape(&m.run_id),
                summary_rows
            )
            .as_bytes(),
        )?;
        // Manifest last: its presence commits the run.
        write_file(&dir.join(MANIFEST), m.to_json().as_bytes())?;
        Ok(m)
    }

    /// Flush a [`Recorder`]'s current snapshot into the store. When
    /// `strip_prefix` is non-empty only metrics under it are taken and
    /// the prefix is removed from stored names, so one server job's
    /// scoped slice (`job42.core.sim...`) lands under the same names a
    /// `swe_run` flush uses — cross-source comparability is the point.
    /// Counters and gauges store one sample; histograms store all raw
    /// samples (rolling windows are derived views and are skipped).
    pub fn record_recorder(
        &self,
        manifest: &RunManifest,
        rec: &Recorder,
        strip_prefix: &str,
    ) -> io::Result<RunManifest> {
        let snap = rec.snapshot();
        let snap = if strip_prefix.is_empty() {
            snap
        } else {
            snap.filtered(strip_prefix)
        };
        let strip =
            |name: &str| -> String { name.strip_prefix(strip_prefix).unwrap_or(name).to_string() };
        let mut metrics: BTreeMap<String, (MetricKind, Vec<f64>)> = BTreeMap::new();
        for (name, v) in &snap.counters {
            metrics.insert(strip(name), (MetricKind::Counter, vec![*v as f64]));
        }
        for (name, v) in &snap.gauges {
            metrics.insert(strip(name), (MetricKind::Gauge, vec![*v]));
        }
        for name in snap.histograms.keys() {
            let samples = rec.histogram_samples(name);
            metrics.insert(strip(name), (MetricKind::Histogram, samples));
        }
        self.record(manifest, &metrics)
    }

    /// Answer a query from the coarsest exact ladder level (see the
    /// module docs for the resolution rules).
    pub fn query(&self, q: &MetricQuery) -> io::Result<Vec<QueryRow>> {
        let runs = self.select_runs(&q.run_filter)?;
        let mut out = Vec::new();
        for m in &runs {
            let rows = self.run_summary(&m.run_id)?;
            for row in rows {
                if !row.metric.starts_with(&q.name_prefix) {
                    continue;
                }
                let (value, level) = match q.range {
                    None => (q.agg.of(&row.summary), "summary"),
                    Some((start, end)) => {
                        self.answer_range(&m.run_id, &row.metric, start, end, q.agg)?
                    }
                };
                out.push(QueryRow {
                    run_id: m.run_id.clone(),
                    metric: row.metric,
                    value,
                    level,
                });
            }
        }
        Ok(out)
    }

    /// Range answers: steps level when the chunks tile `[start, end)`
    /// exactly and the aggregation survives merging; raw otherwise.
    fn answer_range(
        &self,
        run_id: &str,
        metric: &str,
        start: usize,
        end: usize,
        agg: Agg,
    ) -> io::Result<(f64, &'static str)> {
        if agg.steps_exact() {
            if let Some(rows) = self.run_steps(run_id, metric)? {
                let covering: Vec<&StepRow> = rows
                    .iter()
                    .filter(|r| r.start >= start && r.start + r.summary.count <= end)
                    .collect();
                let covered: usize = covering.iter().map(|r| r.summary.count).sum();
                let aligned = covering.first().map(|r| r.start) == Some(start)
                    && covered == end.saturating_sub(start);
                if aligned && !covering.is_empty() {
                    let parts: Vec<LadderSummary> = covering.iter().map(|r| r.summary).collect();
                    return Ok((agg.of(&LadderSummary::merge(&parts)), "steps"));
                }
            }
        }
        let samples = self
            .run_raw(run_id, metric)?
            .ok_or_else(|| invalid(format!("metric {metric} not in run {run_id}")))?;
        let end = end.min(samples.len());
        let start = start.min(end);
        Ok((
            agg.of(&LadderSummary::from_slice(&samples[start..end])),
            "raw",
        ))
    }

    /// Resolve a run filter to manifests, oldest first.
    pub fn select_runs(&self, f: &RunFilter) -> io::Result<Vec<RunManifest>> {
        let mut runs = self.runs()?;
        if !f.run_ids.is_empty() {
            runs.retain(|m| f.run_ids.iter().any(|id| *id == m.run_id));
        }
        runs.retain(|m| {
            f.keys
                .iter()
                .all(|(k, v)| m.field(k).as_deref() == Some(v.as_str()))
        });
        if let Some(n) = f.last_n {
            let skip = runs.len().saturating_sub(n);
            runs.drain(..skip);
        }
        Ok(runs)
    }

    /// Apply a retention policy: delete whole runs past `max_runs`
    /// (oldest first), then shed raw + steps shards (oldest first) until
    /// the byte budget fits. Manifests and summaries are never touched,
    /// so per-run summaries survive compaction bitwise.
    pub fn compact(&self, r: &Retention) -> io::Result<CompactionReport> {
        let mut report = CompactionReport {
            bytes_before: self.total_bytes()?,
            ..CompactionReport::default()
        };
        let runs = self.runs()?;
        let excess = runs.len().saturating_sub(r.max_runs.max(1));
        for m in &runs[..excess] {
            fs::remove_dir_all(self.run_dir(&m.run_id))?;
            report.removed_runs.push(m.run_id.clone());
        }
        let mut bytes = self.total_bytes()?;
        for m in &runs[excess..] {
            if bytes <= r.max_bytes {
                break;
            }
            let mut shed = 0u64;
            for shard in [RAW_SHARD, STEPS_SHARD] {
                let path = self.run_dir(&m.run_id).join(shard);
                if let Ok(meta) = fs::metadata(&path) {
                    shed += meta.len();
                    fs::remove_file(&path)?;
                }
            }
            if shed > 0 {
                bytes -= shed.min(bytes);
                report.compacted_runs.push(m.run_id.clone());
            }
        }
        report.bytes_after = bytes;
        Ok(report)
    }

    /// Total bytes of every file under `runs/`.
    pub fn total_bytes(&self) -> io::Result<u64> {
        let mut total = 0u64;
        for entry in fs::read_dir(self.runs_dir())? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            for file in fs::read_dir(entry.path())? {
                total += file?.metadata()?.len();
            }
        }
        Ok(total)
    }

    /// Allocate the next sequential run directory; `create_dir` is the
    /// claim, so concurrent writers (server workers) cannot collide.
    fn claim_run_dir(&self, m: &mut RunManifest) -> io::Result<PathBuf> {
        let mut seq = 1 + fs::read_dir(self.runs_dir())?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                e.file_name()
                    .to_string_lossy()
                    .strip_prefix('r')
                    .and_then(|s| s.parse::<u64>().ok())
            })
            .max()
            .unwrap_or(0);
        loop {
            let id = format!("r{seq:06}");
            let dir = self.run_dir(&id);
            match fs::create_dir(&dir) {
                Ok(()) => {
                    m.run_id = id;
                    return Ok(dir);
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => seq += 1,
                Err(e) => return Err(e),
            }
        }
    }
}

/// Shortest-round-trip float formatting: Rust's `{}` prints the minimal
/// digits that parse back to the identical bits, which is what makes
/// "summaries survive compaction bitwise" literal.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn write_file(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = fs::File::create(path)?;
    f.write_all(bytes)?;
    f.flush()
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn compacted(e: io::Error, run_id: &str, shard: &str) -> io::Error {
    if e.kind() == io::ErrorKind::NotFound {
        io::Error::new(
            io::ErrorKind::NotFound,
            format!("run {run_id} has no {shard} (compacted?)"),
        )
    } else {
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swe_store_{}_{}", std::process::id(), name));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn manifest(steps: usize) -> RunManifest {
        RunManifest::new("5", 3, 0, "simd", 4, "pattern-driven", "serial", 0, steps)
    }

    fn hist(samples: &[f64]) -> (MetricKind, Vec<f64>) {
        (MetricKind::Histogram, samples.to_vec())
    }

    #[test]
    fn manifest_round_trips_and_digest_tracks_identity_only() {
        let mut m = manifest(10);
        m.run_id = "r000001".to_string();
        m.config_digest = m.digest();
        m.recorded_unix_s = 1234.5;
        let back = RunManifest::parse(&m.to_json()).unwrap();
        assert_eq!(back, m);
        // Provenance does not move the digest; identity axes do.
        let mut g = m.clone();
        g.git = "other".to_string();
        assert_eq!(g.digest(), m.digest());
        let mut b = m.clone();
        b.backend = "fused".to_string();
        assert_ne!(b.digest(), m.digest());
    }

    #[test]
    fn ladder_levels_agree_with_raw() {
        let store = HistoryStore::open(&tmp("ladder")).unwrap();
        let samples: Vec<f64> = (0..37).map(|i| (i as f64 * 0.7).sin() + 2.0).collect();
        let mut metrics = BTreeMap::new();
        metrics.insert("core.sim.step_seconds".to_string(), hist(&samples));
        let m = store.record(&manifest(10), &metrics).unwrap();

        let raw = store
            .run_raw(&m.run_id, "core.sim.step_seconds")
            .unwrap()
            .unwrap();
        assert_eq!(raw.len(), samples.len());
        for (a, b) in raw.iter().zip(&samples) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        let steps = store
            .run_steps(&m.run_id, "core.sim.step_seconds")
            .unwrap()
            .unwrap();
        let total: usize = steps.iter().map(|s| s.summary.count).sum();
        assert_eq!(total, samples.len());
        // Chunk-tree sum reproduces from raw bitwise.
        let chunk_len = samples.len().div_ceil(10);
        let tree: f64 = samples
            .chunks(chunk_len)
            .map(|c| c.iter().fold(0.0, |a, b| a + b))
            .fold(0.0, |a, b| a + b);
        let sum = store.run_summary(&m.run_id).unwrap()[0].summary.sum;
        assert_eq!(sum.to_bits(), tree.to_bits());
    }

    #[test]
    fn summary_queries_never_touch_finer_shards() {
        let store = HistoryStore::open(&tmp("coarse")).unwrap();
        let mut metrics = BTreeMap::new();
        metrics.insert("m.a".to_string(), hist(&[1.0, 2.0, 3.0, 4.0]));
        store.record(&manifest(2), &metrics).unwrap();
        let rows = store
            .query(&MetricQuery {
                name_prefix: "m.".to_string(),
                run_filter: RunFilter::default(),
                range: None,
                agg: Agg::P95,
            })
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].level, "summary");
        assert_eq!(store.raw_shard_reads(), 0);
        assert_eq!(store.shard_reads().steps, 0);
    }

    #[test]
    fn aligned_ranges_answer_from_steps_and_percentile_ranges_from_raw() {
        let store = HistoryStore::open(&tmp("range")).unwrap();
        let samples: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let mut metrics = BTreeMap::new();
        metrics.insert("m".to_string(), hist(&samples));
        let m = store.record(&manifest(4), &metrics).unwrap();
        // Chunks of 2: [0,4) tiles chunks 0 and 1 exactly.
        let q = |range, agg| MetricQuery {
            name_prefix: "m".to_string(),
            run_filter: RunFilter {
                run_ids: vec![m.run_id.clone()],
                ..RunFilter::default()
            },
            range,
            agg,
        };
        let rows = store.query(&q(Some((0, 4)), Agg::Sum)).unwrap();
        assert_eq!(rows[0].level, "steps");
        assert_eq!(rows[0].value, 0.0 + 1.0 + 2.0 + 3.0);
        assert_eq!(store.raw_shard_reads(), 0);
        // Unaligned range falls to raw.
        let rows = store.query(&q(Some((1, 4)), Agg::Sum)).unwrap();
        assert_eq!(rows[0].level, "raw");
        assert_eq!(rows[0].value, 1.0 + 2.0 + 3.0);
        // Percentiles over a range always go to raw.
        let rows = store.query(&q(Some((0, 4)), Agg::P50)).unwrap();
        assert_eq!(rows[0].level, "raw");
    }

    #[test]
    fn run_filters_compose() {
        let store = HistoryStore::open(&tmp("filters")).unwrap();
        let mut metrics = BTreeMap::new();
        metrics.insert("m".to_string(), hist(&[1.0]));
        store.record(&manifest(1), &metrics).unwrap();
        let mut other = manifest(1);
        other.backend = "fused".to_string();
        store.record(&other, &metrics).unwrap();
        store.record(&manifest(1), &metrics).unwrap();

        let simd = store
            .select_runs(&RunFilter {
                keys: vec![("backend".to_string(), "simd".to_string())],
                ..RunFilter::default()
            })
            .unwrap();
        assert_eq!(simd.len(), 2);
        let last = store
            .select_runs(&RunFilter {
                keys: vec![("backend".to_string(), "simd".to_string())],
                last_n: Some(1),
                ..RunFilter::default()
            })
            .unwrap();
        assert_eq!(last.len(), 1);
        assert_eq!(last[0].run_id, "r000003");
    }

    #[test]
    fn compaction_preserves_summaries_bitwise_and_sheds_raw() {
        let store = HistoryStore::open(&tmp("compact")).unwrap();
        let mut metrics = BTreeMap::new();
        metrics.insert("m".to_string(), hist(&[0.1, 0.2, 0.30000000000000004]));
        for _ in 0..4 {
            store.record(&manifest(3), &metrics).unwrap();
        }
        let before = store.run_summary("r000001").unwrap();
        let report = store
            .compact(&Retention {
                max_runs: 3,
                max_bytes: 0,
            })
            .unwrap();
        assert_eq!(report.removed_runs, vec!["r000001"]);
        assert_eq!(report.compacted_runs, vec!["r000002", "r000003", "r000004"]);
        // Oldest run deleted whole; survivors keep manifests + summaries.
        assert!(store.manifest("r000001").is_err());
        let after = store.run_summary("r000002").unwrap();
        assert_eq!(after.len(), before.len());
        for (a, b) in after.iter().zip(&before) {
            assert_eq!(a.summary.sum.to_bits(), b.summary.sum.to_bits());
            assert_eq!(a.summary.p95.to_bits(), b.summary.p95.to_bits());
        }
        // Raw is gone: range queries surface the compaction.
        assert!(store.run_raw("r000002", "m").is_err());
        // Summary queries still answer.
        let rows = store
            .query(&MetricQuery {
                name_prefix: "m".to_string(),
                run_filter: RunFilter::default(),
                range: None,
                agg: Agg::Sum,
            })
            .unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn recorder_flush_strips_scope_prefixes() {
        let rec = Recorder::new();
        let job = rec.scoped("job7");
        job.add("core.sim.steps", 5);
        job.set_gauge("core.sim.mass_drift", 1e-14);
        job.record("core.sim.step_seconds", 0.25);
        rec.add("other.counter", 1);
        let store = HistoryStore::open(&tmp("scoped")).unwrap();
        let m = store.record_recorder(&manifest(1), &rec, "job7.").unwrap();
        let rows = store.run_summary(&m.run_id).unwrap();
        let names: Vec<&str> = rows.iter().map(|r| r.metric.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "core.sim.mass_drift",
                "core.sim.step_seconds",
                "core.sim.steps"
            ]
        );
        assert!(rows.iter().all(|r| !r.metric.starts_with("job7.")));
    }

    #[test]
    fn merge_is_exact_where_documented() {
        let a = LadderSummary::from_slice(&[1.0, 2.0]);
        let b = LadderSummary::from_slice(&[3.0, 10.0]);
        let m = LadderSummary::merge(&[a, b]);
        assert_eq!(m.count, 4);
        assert_eq!(m.sum, (1.0 + 2.0) + (3.0 + 10.0));
        assert_eq!(m.min, 1.0);
        assert_eq!(m.max, 10.0);
        // Percentile estimates stay inside [min, max].
        assert!(m.p50 >= m.min && m.p50 <= m.max);
        assert!(m.p95 >= m.min && m.p95 <= m.max);
    }
}
