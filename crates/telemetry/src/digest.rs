//! Shared FNV-1a digest helper.
//!
//! Two consumers grew their own copies of the same 64-bit FNV-1a loop: the
//! result hash `mpas_core::runner::state_hash` (tenants compare it to prove
//! bitwise-identical runs) and the artifact-cache `config_digest` in
//! `mpas-server` (coefficient tables are shared across jobs keyed by it).
//! Both now fold their words through [`Fnv1a`], so the constants live in
//! one place next to the metric names that also cross crate boundaries —
//! and layered (k > 1) states hash every lane with the same primitive.
//!
//! The digest is deliberately *not* a cryptographic hash: it exists to make
//! bitwise divergence between runs loud, not to resist adversaries.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental 64-bit FNV-1a hasher.
///
/// ```
/// use mpas_telemetry::digest::Fnv1a;
/// let mut d = Fnv1a::new();
/// d.write_f64_slice(&[1.0, 2.0]);
/// let a = d.finish();
/// let mut e = Fnv1a::new();
/// e.write_f64(1.0);
/// e.write_f64(2.0);
/// assert_eq!(a, e.finish());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Fold raw bytes into the digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Fold one word in little-endian byte order.
    pub fn write_u64(&mut self, w: u64) {
        self.write_bytes(&w.to_le_bytes());
    }

    /// Fold one float by its IEEE-754 bit pattern (bitwise, so `-0.0` and
    /// `0.0` hash differently — exactly what a divergence detector wants).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Fold a whole field array, element order significant.
    pub fn write_f64_slice(&mut self, vs: &[f64]) {
        for &v in vs {
            self.write_f64(v);
        }
    }

    /// The digest accumulated so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Classic FNV-1a test vectors.
        let mut d = Fnv1a::new();
        d.write_bytes(b"");
        assert_eq!(d.finish(), FNV_OFFSET);
        let mut d = Fnv1a::new();
        d.write_bytes(b"a");
        assert_eq!(d.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut d = Fnv1a::new();
        d.write_bytes(b"foobar");
        assert_eq!(d.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn distinguishes_single_bit_flips() {
        let mut a = Fnv1a::new();
        a.write_f64_slice(&[1.0, 2.0, 3.0]);
        let mut b = Fnv1a::new();
        b.write_f64_slice(&[1.0, f64::from_bits(2.0f64.to_bits() ^ 1), 3.0]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn element_order_is_significant() {
        let mut a = Fnv1a::new();
        a.write_f64_slice(&[1.0, 2.0]);
        let mut b = Fnv1a::new();
        b.write_f64_slice(&[2.0, 1.0]);
        assert_ne!(a.finish(), b.finish());
    }
}
