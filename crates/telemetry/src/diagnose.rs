//! Cross-run regression attribution over the [`crate::store`] history.
//!
//! Given one *current* run and a baseline set selected from the store by
//! matching manifest keys ([`crate::store::RunManifest::baseline_key`]:
//! same case, mesh, backend, layers, policy, executor, ranks and step
//! count — only the code or the environment differs), this module
//! answers the question the gate cannot: not just *whether* something
//! regressed, but *where*. Each finding names the metric, the
//! attribution dimension (kernel-backend, a Table-I kernel span, a
//! rank, a blame fraction, the serving plane), the effect size in
//! band-widths, and the store rows that support it.
//!
//! # Band math: reused, not reinvented
//!
//! The statistical core is exactly the perf gate's
//! ([`crate::gate`]): per metric, the baseline runs' values go through
//! [`median_mad`], and a [`BaselineEntry`] with band
//! `k · MAD_SIGMA · mad + floor` decides violation via
//! [`BaselineEntry::violates`]. What diagnosis adds on top is a
//! *classifier* (which direction/severity/floor a metric class gets —
//! speedups regress downward, error norms upward, drifts by absolute
//! value) and a *ranker*: fail-severity findings first, then by effect
//! size `|current − median| / band`. With a single baseline run the MAD
//! is zero and the relative floor carries the whole band — that is the
//! CI smoke configuration (`--against last=1`), and it works because
//! the injected regressions it must catch are far outside any
//! reasonable floor (a forced-scalar SIMD run moves
//! `kernel.simd_speedup_serial` from ~2.6 to ~1.0).
//!
//! # Attribution vocabulary
//!
//! [`Dimension`] speaks the paper's cost-breakdown language:
//!
//! * **kernel-backend** — the SIMD-vs-scalar dispatch itself
//!   (`kernel.simd_speedup_serial`); the top suspect when a build or
//!   environment change silently disabled vectorisation;
//! * **kernel** — one Table-I kernel span
//!   (`swe.simd.kernel.<name>.seconds`, `hybrid.kernel.*`);
//! * **rank** / **blame** — the PR 5 decomposition
//!   (`analysis.blame.rank<r>.<dim>_frac`): which rank, and which of
//!   compute/wait/copy/barrier moved;
//! * **serving** — `serve.*` / `server.*` metrics from `swe_load`;
//! * **solver** — everything else (step time, drifts, error norms).

use crate::gate::{median_mad, BaselineEntry, Direction, Severity};
use crate::json_escape;
use crate::names;
use crate::store::{HistoryStore, MetricKind, RunFilter, RunManifest};
use std::fmt::Write as _;
use std::io;

/// Knobs for [`diagnose`].
#[derive(Debug, Clone)]
pub struct DiagnoseConfig {
    /// Baseline set: the most recent N matching runs before the
    /// current one.
    pub last_n: usize,
    /// Band width in MAD-σ units (the gate's `k`).
    pub k: f64,
}

impl Default for DiagnoseConfig {
    fn default() -> DiagnoseConfig {
        DiagnoseConfig { last_n: 5, k: 4.0 }
    }
}

/// Which part of the stack a finding points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dimension {
    /// The SIMD-vs-scalar kernel dispatch itself.
    KernelBackend,
    /// One Table-I kernel span.
    Kernel,
    /// One rank's blame fraction.
    Rank,
    /// A whole-run blame/critical-path aggregate.
    Blame,
    /// The serving plane (`swe_load` percentiles, server counters).
    Serving,
    /// Everything else: solver-level metrics.
    Solver,
}

impl Dimension {
    /// Stable wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Dimension::KernelBackend => "kernel-backend",
            Dimension::Kernel => "kernel",
            Dimension::Rank => "rank",
            Dimension::Blame => "blame",
            Dimension::Serving => "serving",
            Dimension::Solver => "solver",
        }
    }
}

/// One baseline run's value backing a finding.
#[derive(Debug, Clone, PartialEq)]
pub struct SupportRow {
    /// Baseline run id.
    pub run_id: String,
    /// That run's value for the finding's metric.
    pub value: f64,
}

/// One attributed regression.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The regressed metric.
    pub metric: String,
    /// Attribution dimension.
    pub dimension: Dimension,
    /// Kernel name for [`Dimension::Kernel`] findings.
    pub kernel: Option<String>,
    /// Rank for [`Dimension::Rank`] findings.
    pub rank: Option<usize>,
    /// Blame dimension (`compute`/`wait`/`copy`/`barrier`) for rank
    /// findings.
    pub blame_dim: Option<String>,
    /// The fitted band (gate math: median/MAD over the baseline set).
    pub entry: BaselineEntry,
    /// The current run's value.
    pub current: f64,
    /// Departure in band-widths (`excess / band`); the rank key after
    /// severity.
    pub effect: f64,
    /// `(current − median) / |median|`, `NaN` when the median is zero.
    pub delta_frac: f64,
    /// The store rows behind the band, one per baseline run.
    pub support: Vec<SupportRow>,
}

impl Finding {
    fn to_json(&self) -> String {
        let opt_str = |v: &Option<String>| match v {
            Some(s) => format!("\"{}\"", json_escape(s)),
            None => "null".to_string(),
        };
        let support: Vec<String> = self
            .support
            .iter()
            .map(|s| {
                format!(
                    "{{\"run\": \"{}\", \"value\": {}}}",
                    json_escape(&s.run_id),
                    fmt_json_f64(s.value)
                )
            })
            .collect();
        format!(
            "{{\"metric\": \"{}\", \"dimension\": \"{}\", \"kernel\": {}, \
             \"rank\": {}, \"blame_dim\": {}, \"severity\": \"{}\", \
             \"direction\": \"{}\", \"current\": {}, \"median\": {}, \
             \"mad\": {}, \"band\": {}, \"effect\": {}, \"delta_frac\": {}, \
             \"support\": [{}]}}",
            json_escape(&self.metric),
            self.dimension.as_str(),
            opt_str(&self.kernel),
            match self.rank {
                Some(r) => r.to_string(),
                None => "null".to_string(),
            },
            opt_str(&self.blame_dim),
            self.entry.severity.as_str(),
            self.entry.direction.as_str(),
            fmt_json_f64(self.current),
            fmt_json_f64(self.entry.median),
            fmt_json_f64(self.entry.mad),
            fmt_json_f64(self.entry.band()),
            fmt_json_f64(self.effect),
            fmt_json_f64(self.delta_frac),
            support.join(", "),
        )
    }
}

/// The ranked attribution report.
#[derive(Debug, Clone)]
pub struct DiagnosisReport {
    /// The run under diagnosis.
    pub run: RunManifest,
    /// Baseline run ids the bands were fitted from (oldest first).
    pub baseline_runs: Vec<String>,
    /// Metrics compared (present in the current run and in at least
    /// one baseline).
    pub checked_metrics: usize,
    /// Regressions, ranked fail-severity first, then by effect size.
    pub findings: Vec<Finding>,
}

impl DiagnosisReport {
    /// Whether a fail-severity regression was attributed (the
    /// `swe_diag` non-zero exit condition).
    pub fn failed(&self) -> bool {
        self.findings
            .iter()
            .any(|f| f.entry.severity == Severity::Fail)
    }

    /// Human-readable report, top-ranked finding first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "diagnosis: run {} (case {} level {} {} k={} {} ranks={}, git {}) vs {} baseline run(s) [{}]",
            self.run.run_id,
            self.run.case,
            self.run.level,
            self.run.backend,
            self.run.layers,
            self.run.executor,
            self.run.ranks,
            self.run.git,
            self.baseline_runs.len(),
            self.baseline_runs.join(", "),
        );
        if self.baseline_runs.is_empty() {
            let _ = writeln!(
                out,
                "  no baseline runs match this manifest key; record more runs first"
            );
            let _ = writeln!(out, "verdict: no-baseline");
            return out;
        }
        let _ = writeln!(
            out,
            "  checked {} metric(s), {} regressed",
            self.checked_metrics,
            self.findings.len()
        );
        for (i, f) in self.findings.iter().enumerate() {
            let where_ = match f.dimension {
                Dimension::Kernel => {
                    format!("kernel[{}]", f.kernel.as_deref().unwrap_or("?"))
                }
                Dimension::Rank => format!(
                    "rank{}[{}]",
                    f.rank.map(|r| r.to_string()).unwrap_or_default(),
                    f.blame_dim.as_deref().unwrap_or("?")
                ),
                d => d.as_str().to_string(),
            };
            let pct = if f.delta_frac.is_finite() {
                format!("{:+.1}%", f.delta_frac * 100.0)
            } else {
                "n/a".to_string()
            };
            let _ = writeln!(
                out,
                "  {:2}. {} {:<16} {}: {} vs median {} ({}, {:.1} band-widths {})",
                i + 1,
                match f.entry.severity {
                    Severity::Fail => "FAIL",
                    Severity::Warn => "warn",
                },
                where_,
                f.metric,
                fmt_val(f.current),
                fmt_val(f.entry.median),
                pct,
                f.effect,
                match f.entry.direction {
                    Direction::Above => "above",
                    Direction::Below => "below",
                    Direction::Both => "off",
                },
            );
            let support: Vec<String> = f
                .support
                .iter()
                .map(|s| format!("{}={}", s.run_id, fmt_val(s.value)))
                .collect();
            let _ = writeln!(out, "        support: {}", support.join(", "));
        }
        if self.failed() {
            let top = self
                .findings
                .iter()
                .find(|f| f.entry.severity == Severity::Fail)
                .expect("failed() implies a fail finding");
            let _ = writeln!(
                out,
                "verdict: FAIL — regression attributed to {} ({})",
                top.dimension.as_str(),
                top.metric
            );
        } else if self.findings.is_empty() {
            let _ = writeln!(out, "verdict: ok — no regressions against the baseline set");
        } else {
            let _ = writeln!(out, "verdict: warn — only warn-severity drift");
        }
        out
    }

    /// The report as a JSON document (the `--json` / HTTP shape).
    pub fn to_json(&self) -> String {
        let findings: Vec<String> = self.findings.iter().map(|f| f.to_json()).collect();
        let baselines: Vec<String> = self
            .baseline_runs
            .iter()
            .map(|r| format!("\"{}\"", json_escape(r)))
            .collect();
        format!(
            "{{\n  \"run\": {},\n  \"baselines\": [{}],\n  \"checked_metrics\": {},\n  \
             \"failed\": {},\n  \"findings\": [\n    {}\n  ]\n}}\n",
            self.run.to_json(),
            baselines.join(", "),
            self.checked_metrics,
            self.failed(),
            findings.join(",\n    "),
        )
    }
}

/// How a metric class is banded: everything a [`BaselineEntry`] needs
/// beyond the fitted median/MAD.
struct Class {
    direction: Direction,
    severity: Severity,
    abs: bool,
    rel_floor: f64,
    abs_floor: f64,
}

/// The metric-class table. Order matters: first match wins.
fn classify(metric: &str) -> Class {
    let c = |direction, severity, abs, rel_floor, abs_floor| Class {
        direction,
        severity,
        abs,
        rel_floor,
        abs_floor,
    };
    if metric.contains("speedup") {
        // A vanished speedup is the one deterministic, fail-worthy
        // performance signal (kernel.simd_speedup_serial is measured
        // in-process, A/B, so it is far less noisy than wall times).
        c(Direction::Below, Severity::Fail, false, 0.10, 1e-9)
    } else if metric.contains("drift") {
        // Signed conservation drifts: compare magnitudes; growth is a
        // correctness regression.
        c(Direction::Both, Severity::Fail, true, 0.05, 1e-9)
    } else if metric.starts_with("validate.") || metric.contains("err_l") {
        // Reference-norm errors are deterministic per build: any move
        // beyond the floor is a numerics change.
        c(Direction::Above, Severity::Fail, false, 0.10, 1e-12)
    } else if metric.ends_with("per_sec") {
        c(Direction::Below, Severity::Warn, false, 0.25, 1e-9)
    } else if metric.ends_with("_frac") || metric.contains("imbalance") {
        // Fractions live in [0,1]: an absolute floor is the right unit.
        c(Direction::Above, Severity::Warn, false, 0.0, 0.10)
    } else if metric.ends_with("seconds") || metric.ends_with("_ms") || metric.ends_with("_s") {
        // Wall times are the noisy class (shared CI runners).
        c(Direction::Above, Severity::Warn, false, 0.25, 1e-9)
    } else {
        c(Direction::Both, Severity::Warn, false, 0.25, 1e-9)
    }
}

/// Attribution-dimension classification (see the module docs).
fn dimension_of(metric: &str) -> (Dimension, Option<String>, Option<usize>, Option<String>) {
    if metric == names::KERNEL_SIMD_SPEEDUP_SERIAL || metric.contains("simd_speedup") {
        return (Dimension::KernelBackend, None, None, None);
    }
    if let Some(pos) = metric.find(".kernel.") {
        let rest = &metric[pos + ".kernel.".len()..];
        let name = rest.split('.').next().unwrap_or(rest);
        return (Dimension::Kernel, Some(name.to_string()), None, None);
    }
    if let Some(rest) = metric.strip_prefix("analysis.blame.rank") {
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if let Ok(rank) = digits.parse::<usize>() {
            let tail = rest[digits.len()..].trim_start_matches('.');
            let blame_dim = tail.strip_suffix("_frac").unwrap_or(tail);
            return (
                Dimension::Rank,
                None,
                Some(rank),
                Some(blame_dim.to_string()),
            );
        }
    }
    if metric.starts_with("analysis.") {
        return (Dimension::Blame, None, None, None);
    }
    if metric.starts_with("serve.") || metric.starts_with("server.") {
        return (Dimension::Serving, None, None, None);
    }
    (Dimension::Solver, None, None, None)
}

/// One run's comparable value for a stored metric: the per-run summary
/// median, which matches the gate's resolution order (a gauge or
/// counter stores a single sample, so its p50 *is* the value; a
/// histogram compares by p50, exactly as [`crate::gate::Baseline`]
/// does against a live snapshot).
fn value_of(kind: MetricKind, p50: f64) -> f64 {
    let _ = kind;
    p50
}

/// Diagnose `run_id` against the most recent matching baseline runs.
///
/// Metrics present in the current run but in no baseline (or vice
/// versa) are skipped — new metrics are not regressions. Baselines are
/// selected strictly *before* the current run, so diagnosing a
/// mid-history run ignores its future.
pub fn diagnose(
    store: &HistoryStore,
    run_id: &str,
    cfg: &DiagnoseConfig,
) -> io::Result<DiagnosisReport> {
    let current = store.manifest(run_id)?;
    let key = current.baseline_key();
    let mut baselines = store.select_runs(&RunFilter::default())?;
    baselines.retain(|m| m.baseline_key() == key && m.run_id.as_str() < run_id);
    let skip = baselines.len().saturating_sub(cfg.last_n.max(1));
    baselines.drain(..skip);

    let mut report = DiagnosisReport {
        run: current,
        baseline_runs: baselines.iter().map(|m| m.run_id.clone()).collect(),
        checked_metrics: 0,
        findings: Vec::new(),
    };
    if baselines.is_empty() {
        return Ok(report);
    }

    // Baseline values per metric, in run order (summary reads only:
    // diagnosis never needs a raw shard).
    let mut history: std::collections::BTreeMap<String, Vec<SupportRow>> =
        std::collections::BTreeMap::new();
    for m in &baselines {
        for row in store.run_summary(&m.run_id)? {
            history
                .entry(row.metric.clone())
                .or_default()
                .push(SupportRow {
                    run_id: m.run_id.clone(),
                    value: value_of(row.kind, row.summary.p50),
                });
        }
    }

    for row in store.run_summary(run_id)? {
        let Some(support) = history.get(&row.metric) else {
            continue;
        };
        report.checked_metrics += 1;
        let values: Vec<f64> = support.iter().map(|s| s.value).collect();
        let (median, mad) = median_mad(&values);
        let class = classify(&row.metric);
        let entry = BaselineEntry {
            metric: row.metric.clone(),
            median,
            mad,
            count: values.len(),
            k: cfg.k,
            floor: class.rel_floor * median.abs() + class.abs_floor,
            direction: class.direction,
            severity: class.severity,
            abs: class.abs,
        };
        let current_value = value_of(row.kind, row.summary.p50);
        if !entry.violates(current_value) {
            continue;
        }
        let v = if entry.abs {
            current_value.abs()
        } else {
            current_value
        };
        let excess = match entry.direction {
            Direction::Above => v - median,
            Direction::Below => median - v,
            Direction::Both => (v - median).abs(),
        };
        let band = entry.band().max(f64::MIN_POSITIVE);
        let (dimension, kernel, rank, blame_dim) = dimension_of(&row.metric);
        report.findings.push(Finding {
            metric: row.metric,
            dimension,
            kernel,
            rank,
            blame_dim,
            current: current_value,
            effect: excess / band,
            delta_frac: if median != 0.0 {
                (current_value - median) / median.abs()
            } else {
                f64::NAN
            },
            support: support.clone(),
            entry,
        });
    }

    // Rank: fail-severity findings first, then by effect size. This is
    // what puts the kernel-backend dimension on top when forced-scalar
    // dispatch tanks the speedup, even though every downstream kernel
    // span also warns with large effects.
    report.findings.sort_by(|a, b| {
        let sev = |f: &Finding| match f.entry.severity {
            Severity::Fail => 0,
            Severity::Warn => 1,
        };
        sev(a).cmp(&sev(b)).then(
            b.effect
                .partial_cmp(&a.effect)
                .unwrap_or(std::cmp::Ordering::Equal),
        )
    });
    Ok(report)
}

/// Compact human-friendly value formatting for the rendered report.
fn fmt_val(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if v == 0.0 || (1e-3..1e5).contains(&a) {
        format!("{v:.4}")
    } else {
        format!("{v:.3e}")
    }
}

fn fmt_json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{LadderSummary, MetricQuery, RunFilter};
    use std::collections::BTreeMap;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swe_diag_{}_{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn manifest() -> RunManifest {
        RunManifest::new("5", 6, 0, "simd", 4, "pattern-driven", "serial", 0, 10)
    }

    fn record(store: &HistoryStore, speedup: f64, kernel_s: f64) -> RunManifest {
        let mut metrics: BTreeMap<String, (MetricKind, Vec<f64>)> = BTreeMap::new();
        metrics.insert(
            names::KERNEL_SIMD_SPEEDUP_SERIAL.to_string(),
            (MetricKind::Gauge, vec![speedup]),
        );
        metrics.insert(
            "swe.simd.kernel.tend_u.seconds".to_string(),
            (
                MetricKind::Histogram,
                (0..10)
                    .map(|i| kernel_s * (1.0 + 0.01 * i as f64))
                    .collect(),
            ),
        );
        metrics.insert(
            "core.sim.mass_drift".to_string(),
            (MetricKind::Gauge, vec![1e-14]),
        );
        store.record(&manifest(), &metrics).unwrap()
    }

    #[test]
    fn forced_scalar_regression_is_attributed_to_the_kernel_backend() {
        let store = HistoryStore::open(&tmp("attrib")).unwrap();
        for _ in 0..3 {
            record(&store, 2.6, 0.05);
        }
        let cur = record(&store, 1.0, 0.18);
        let report = diagnose(&store, &cur.run_id, &DiagnoseConfig::default()).unwrap();
        assert_eq!(report.baseline_runs.len(), 3);
        assert!(report.failed());
        let top = &report.findings[0];
        assert_eq!(top.dimension, Dimension::KernelBackend);
        assert_eq!(top.metric, names::KERNEL_SIMD_SPEEDUP_SERIAL);
        assert_eq!(top.entry.severity, Severity::Fail);
        // The slowed kernel span shows up too, as a ranked warn finding.
        assert!(report.findings.iter().any(|f| {
            f.dimension == Dimension::Kernel && f.kernel.as_deref() == Some("tend_u")
        }));
        // Unmoved metrics produce no findings.
        assert!(report
            .findings
            .iter()
            .all(|f| f.metric != "core.sim.mass_drift"));
        let rendered = report.render();
        assert!(rendered.contains("verdict: FAIL"));
        assert!(rendered.contains("kernel-backend"));
        crate::export::validate_json(&report.to_json()).unwrap();
    }

    #[test]
    fn single_baseline_works_via_the_relative_floor() {
        let store = HistoryStore::open(&tmp("single")).unwrap();
        record(&store, 2.6, 0.05);
        let cur = record(&store, 1.0, 0.05);
        let report = diagnose(
            &store,
            &cur.run_id,
            &DiagnoseConfig {
                last_n: 1,
                ..DiagnoseConfig::default()
            },
        )
        .unwrap();
        assert!(report.failed());
        assert_eq!(report.findings[0].dimension, Dimension::KernelBackend);
    }

    #[test]
    fn identical_runs_produce_no_findings() {
        let store = HistoryStore::open(&tmp("clean")).unwrap();
        record(&store, 2.6, 0.05);
        record(&store, 2.6, 0.05);
        let cur = record(&store, 2.6, 0.05);
        let report = diagnose(&store, &cur.run_id, &DiagnoseConfig::default()).unwrap();
        assert!(!report.failed());
        assert!(report.findings.is_empty());
        assert!(report.checked_metrics >= 3);
        assert!(report.render().contains("verdict: ok"));
    }

    #[test]
    fn runs_with_different_manifest_keys_are_not_baselines() {
        let store = HistoryStore::open(&tmp("keys")).unwrap();
        record(&store, 2.6, 0.05);
        let mut other = manifest();
        other.backend = "fused".to_string();
        let mut metrics: BTreeMap<String, (MetricKind, Vec<f64>)> = BTreeMap::new();
        metrics.insert(
            names::KERNEL_SIMD_SPEEDUP_SERIAL.to_string(),
            (MetricKind::Gauge, vec![9.9]),
        );
        store.record(&other, &metrics).unwrap();
        let cur = record(&store, 2.6, 0.05);
        let report = diagnose(&store, &cur.run_id, &DiagnoseConfig::default()).unwrap();
        // Only the matching run is a baseline; the fused run is ignored.
        assert_eq!(report.baseline_runs, vec!["r000001"]);
        assert!(!report.failed());
    }

    #[test]
    fn no_baselines_yields_a_calm_report() {
        let store = HistoryStore::open(&tmp("nobase")).unwrap();
        let cur = record(&store, 2.6, 0.05);
        let report = diagnose(&store, &cur.run_id, &DiagnoseConfig::default()).unwrap();
        assert!(!report.failed());
        assert!(report.findings.is_empty());
        assert!(report.render().contains("no-baseline"));
    }

    #[test]
    fn rank_blame_metrics_decode_into_rank_and_dimension() {
        let (d, k, r, b) = dimension_of("analysis.blame.rank2.wait_frac");
        assert_eq!(d, Dimension::Rank);
        assert_eq!(k, None);
        assert_eq!(r, Some(2));
        assert_eq!(b.as_deref(), Some("wait"));
        let (d, k, ..) = dimension_of("swe.simd.kernel.vorticity_pv.seconds");
        assert_eq!(d, Dimension::Kernel);
        assert_eq!(k.as_deref(), Some("vorticity_pv"));
        let (d, ..) = dimension_of(names::KERNEL_SIMD_SPEEDUP_SERIAL);
        assert_eq!(d, Dimension::KernelBackend);
        let (d, ..) = dimension_of("serve.jobs_per_sec");
        assert_eq!(d, Dimension::Serving);
        let (d, ..) = dimension_of("core.sim.step_seconds");
        assert_eq!(d, Dimension::Solver);
    }

    #[test]
    fn diagnosis_reads_only_summaries() {
        let store = HistoryStore::open(&tmp("reads")).unwrap();
        for _ in 0..5 {
            record(&store, 2.6, 0.05);
        }
        let cur = record(&store, 1.0, 0.18);
        let _ = diagnose(&store, &cur.run_id, &DiagnoseConfig::default()).unwrap();
        assert_eq!(store.raw_shard_reads(), 0);
        assert_eq!(store.shard_reads().steps, 0);
        // And a summary-level query across all six runs is ladder-only.
        let rows = store
            .query(&MetricQuery {
                name_prefix: "kernel.".to_string(),
                run_filter: RunFilter::default(),
                range: None,
                agg: crate::store::Agg::P50,
            })
            .unwrap();
        assert_eq!(rows.len(), 6);
        assert_eq!(store.raw_shard_reads(), 0);
    }

    #[test]
    fn value_of_matches_gate_resolution() {
        let s = LadderSummary::from_slice(&[5.0]);
        assert_eq!(value_of(MetricKind::Gauge, s.p50), 5.0);
        assert_eq!(value_of(MetricKind::Counter, s.p50), 5.0);
    }
}
