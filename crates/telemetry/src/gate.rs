//! Statistical performance-regression gates.
//!
//! A **baseline** (`BENCH_baseline.json`) stores, per watched metric, a
//! robust location/spread pair fitted from repeated samples: the median
//! and the MAD (median absolute deviation). A later run is compared
//! against `median ± (k · 1.4826 · MAD + floor)` — the 1.4826 factor makes
//! the MAD a consistent σ estimator under Gaussian noise, `k` is the band
//! width in σ, and `floor` is an absolute term that keeps near-zero-noise
//! metrics (e.g. a deterministic mass drift) from producing a zero-width
//! band that trips on harmless jitter.
//!
//! Entries carry a [`Severity`]: step-time drift is `Warn` (CI machines
//! are noisy; a warning is advisory), while invariant-adjacent metrics
//! (mass drift, h-error) are `Fail` and make [`GateOutcome::failed`] true
//! — `swe_run --gate` turns that into a nonzero exit.
//!
//! The format is read and written with this crate's own dependency-free
//! JSON ([`crate::export::parse_json`]), so the gate runs anywhere the
//! binary does.

use crate::export::{json_escape, parse_json, JsonValue};
use crate::MetricsSnapshot;
use std::fmt::Write as _;

/// Consistency factor turning a MAD into a σ estimate (Gaussian).
pub const MAD_SIGMA: f64 = 1.4826;

/// Which direction of departure from the median is a regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Only `value > median + band` violates (times, error norms).
    Above,
    /// Only `value < median − band` violates (throughputs).
    Below,
    /// Either departure violates.
    Both,
}

impl Direction {
    /// Stable wire name (baseline JSON, diagnosis reports).
    pub fn as_str(&self) -> &'static str {
        match self {
            Direction::Above => "above",
            Direction::Below => "below",
            Direction::Both => "both",
        }
    }

    /// Parse a wire name back.
    pub fn parse(s: &str) -> Option<Direction> {
        match s {
            "above" => Some(Direction::Above),
            "below" => Some(Direction::Below),
            "both" => Some(Direction::Both),
            _ => None,
        }
    }
}

/// How a violated entry affects the gate's exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Report but keep the gate green (noisy metrics, e.g. step time).
    Warn,
    /// Violations make [`GateOutcome::failed`] true.
    Fail,
}

impl Severity {
    /// Stable wire name (baseline JSON, diagnosis reports).
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Fail => "fail",
        }
    }

    /// Parse a wire name back.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "warn" => Some(Severity::Warn),
            "fail" => Some(Severity::Fail),
            _ => None,
        }
    }
}

/// One watched metric in a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    /// Metric name, resolved against a [`MetricsSnapshot`] as gauge
    /// first, then histogram median (p50), then counter.
    pub metric: String,
    /// Robust location fitted at baseline time.
    pub median: f64,
    /// Robust spread (median absolute deviation) at baseline time.
    pub mad: f64,
    /// Number of samples the fit used (kept for auditability; small
    /// counts mean a fragile band).
    pub count: usize,
    /// Band width in MAD-σ units.
    pub k: f64,
    /// Absolute band floor added to the statistical term.
    pub floor: f64,
    /// Which departures violate.
    pub direction: Direction,
    /// Whether violations fail the gate or only warn.
    pub severity: Severity,
    /// Compare `|value|` instead of `value` (signed drifts).
    pub abs: bool,
}

impl BaselineEntry {
    /// The half-width of the acceptance band.
    pub fn band(&self) -> f64 {
        self.k * MAD_SIGMA * self.mad + self.floor
    }

    /// Whether `value` violates this entry.
    pub fn violates(&self, value: f64) -> bool {
        if !value.is_finite() {
            return true;
        }
        let v = if self.abs { value.abs() } else { value };
        let band = self.band();
        match self.direction {
            Direction::Above => v > self.median + band,
            Direction::Below => v < self.median - band,
            Direction::Both => (v - self.median).abs() > band,
        }
    }
}

/// A named set of baseline entries (the `BENCH_baseline.json` document).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    /// Free-form label (mesh level, executor, host...).
    pub name: String,
    /// The watched metrics.
    pub entries: Vec<BaselineEntry>,
}

/// Robust location/spread of a sample set: `(median, MAD)`.
///
/// Nearest-rank medians; empty input gives `(0, 0)`.
pub fn median_mad(samples: &[f64]) -> (f64, f64) {
    fn median(sorted: &[f64]) -> f64 {
        let n = sorted.len();
        if n == 0 {
            return 0.0;
        }
        if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        }
    }
    let mut s: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
    s.sort_by(|a, b| a.total_cmp(b));
    let med = median(&s);
    let mut dev: Vec<f64> = s.iter().map(|v| (v - med).abs()).collect();
    dev.sort_by(|a, b| a.total_cmp(b));
    (med, median(&dev))
}

impl Baseline {
    /// Parse a baseline document. Unknown object keys are ignored so the
    /// format can grow; missing required keys are an error naming the
    /// entry index.
    pub fn parse(json: &str) -> Result<Baseline, String> {
        let v = parse_json(json).map_err(|off| format!("invalid JSON at byte {off}"))?;
        let name = v
            .get("name")
            .and_then(JsonValue::as_str)
            .unwrap_or("")
            .to_string();
        let mut entries = Vec::new();
        let raw = v
            .get("entries")
            .and_then(JsonValue::as_arr)
            .ok_or("baseline has no \"entries\" array")?;
        for (i, e) in raw.iter().enumerate() {
            let num = |key: &str| e.get(key).and_then(JsonValue::as_f64);
            let metric = e
                .get("metric")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("entry {i}: missing \"metric\""))?
                .to_string();
            let median = num("median").ok_or_else(|| format!("entry {i}: missing \"median\""))?;
            let mad = num("mad").unwrap_or(0.0);
            entries.push(BaselineEntry {
                metric,
                median,
                mad,
                count: num("count").unwrap_or(0.0) as usize,
                k: num("k").unwrap_or(4.0),
                floor: num("floor").unwrap_or(0.0),
                direction: e
                    .get("direction")
                    .and_then(JsonValue::as_str)
                    .map(|s| {
                        Direction::parse(s).ok_or_else(|| format!("entry {i}: bad direction {s:?}"))
                    })
                    .transpose()?
                    .unwrap_or(Direction::Above),
                severity: e
                    .get("severity")
                    .and_then(JsonValue::as_str)
                    .map(|s| {
                        Severity::parse(s).ok_or_else(|| format!("entry {i}: bad severity {s:?}"))
                    })
                    .transpose()?
                    .unwrap_or(Severity::Warn),
                abs: matches!(e.get("abs"), Some(JsonValue::Bool(true))),
            });
        }
        Ok(Baseline { name, entries })
    }

    /// Serialize as the committed `BENCH_baseline.json` format.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"name\": \"{}\",\n  \"entries\": [",
            json_escape(&self.name)
        );
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"metric\": \"{}\", \"median\": {}, \"mad\": {}, \"count\": {}, \
                 \"k\": {}, \"floor\": {}, \"direction\": \"{}\", \"severity\": \"{}\", \
                 \"abs\": {}}}",
                json_escape(&e.metric),
                fmt_num(e.median),
                fmt_num(e.mad),
                e.count,
                fmt_num(e.k),
                fmt_num(e.floor),
                e.direction.as_str(),
                e.severity.as_str(),
                e.abs,
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Compare a snapshot against every entry. Metrics are resolved as
    /// gauge, then histogram p50, then counter; an entry whose metric is
    /// absent from the snapshot reports [`GateStatus::Missing`] (a
    /// `Fail`-severity missing metric fails the gate — silently skipping
    /// the metric the gate exists for is itself a regression).
    pub fn evaluate(&self, snap: &MetricsSnapshot) -> GateOutcome {
        let checks = self
            .entries
            .iter()
            .map(|e| {
                let value = snap
                    .gauge(&e.metric)
                    .or_else(|| snap.histogram(&e.metric).map(|h| h.p50))
                    .or_else(|| snap.counter(&e.metric).map(|c| c as f64));
                let status = match value {
                    None => GateStatus::Missing,
                    Some(v) if !e.violates(v) => GateStatus::Ok,
                    Some(_) => match e.severity {
                        Severity::Warn => GateStatus::Warn,
                        Severity::Fail => GateStatus::Fail,
                    },
                };
                GateCheck {
                    entry: e.clone(),
                    value,
                    status,
                }
            })
            .collect();
        GateOutcome {
            baseline: self.name.clone(),
            checks,
        }
    }
}

fn fmt_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Outcome of one entry's comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateStatus {
    /// Within the band.
    Ok,
    /// Violated a `Warn` entry.
    Warn,
    /// Violated a `Fail` entry.
    Fail,
    /// The metric was absent from the snapshot.
    Missing,
}

/// One entry's comparison result.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCheck {
    /// The baseline entry compared against.
    pub entry: BaselineEntry,
    /// The snapshot's value (None if absent).
    pub value: Option<f64>,
    /// The verdict.
    pub status: GateStatus,
}

/// Every entry's verdict for one run.
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    /// The baseline's name.
    pub baseline: String,
    /// Per-entry results, in baseline order.
    pub checks: Vec<GateCheck>,
}

impl GateOutcome {
    /// True iff the gate should turn the run red: a `Fail`-severity entry
    /// was violated or its metric was missing.
    pub fn failed(&self) -> bool {
        self.checks.iter().any(|c| {
            c.status == GateStatus::Fail
                || (c.status == GateStatus::Missing && c.entry.severity == Severity::Fail)
        })
    }

    /// True iff anything at all was out of band (including warnings).
    pub fn warned(&self) -> bool {
        self.checks.iter().any(|c| c.status != GateStatus::Ok)
    }

    /// Fixed-width report, one row per entry plus a verdict line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "gate vs baseline {:?}: {} entr{}",
            self.baseline,
            self.checks.len(),
            if self.checks.len() == 1 { "y" } else { "ies" }
        );
        for c in &self.checks {
            let band = c.entry.band();
            let status = match c.status {
                GateStatus::Ok => "ok",
                GateStatus::Warn => "WARN",
                GateStatus::Fail => "FAIL",
                GateStatus::Missing => "MISSING",
            };
            let value = c
                .value
                .map(|v| format!("{v:.6e}"))
                .unwrap_or_else(|| "-".to_string());
            let _ = writeln!(
                out,
                "  [{status:>7}] {:<42} value {:>13} vs median {:.6e} band {:.3e} ({}, {})",
                c.entry.metric,
                value,
                c.entry.median,
                band,
                c.entry.direction.as_str(),
                c.entry.severity.as_str(),
            );
        }
        let _ = writeln!(
            out,
            "verdict: {}",
            if self.failed() {
                "FAIL"
            } else if self.warned() {
                "warn"
            } else {
                "ok"
            }
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn entry(metric: &str, median: f64, mad: f64) -> BaselineEntry {
        BaselineEntry {
            metric: metric.to_string(),
            median,
            mad,
            count: 9,
            k: 4.0,
            floor: 0.0,
            direction: Direction::Above,
            severity: Severity::Fail,
            abs: false,
        }
    }

    #[test]
    fn median_mad_is_robust_to_one_outlier() {
        let (med, mad) = median_mad(&[1.0, 1.1, 0.9, 1.05, 100.0]);
        assert!((med - 1.05).abs() < 1e-12);
        assert!(mad < 0.2, "MAD must ignore the outlier, got {mad}");
        assert_eq!(median_mad(&[]), (0.0, 0.0));
        let (m1, d1) = median_mad(&[5.0]);
        assert_eq!((m1, d1), (5.0, 0.0));
    }

    #[test]
    fn band_and_directions() {
        let mut e = entry("m", 10.0, 1.0);
        let band = 4.0 * MAD_SIGMA;
        assert!((e.band() - band).abs() < 1e-12);
        assert!(!e.violates(10.0 + band - 0.01));
        assert!(e.violates(10.0 + band + 0.01));
        assert!(!e.violates(0.0)); // below is fine for Above
        e.direction = Direction::Below;
        assert!(e.violates(10.0 - band - 0.01));
        assert!(!e.violates(10.0 + 100.0));
        e.direction = Direction::Both;
        assert!(e.violates(10.0 - band - 0.01) && e.violates(10.0 + band + 0.01));
        assert!(e.violates(f64::NAN));
    }

    #[test]
    fn abs_compares_magnitude() {
        let mut e = entry("drift", 0.0, 0.0);
        e.floor = 1e-9;
        e.abs = true;
        assert!(!e.violates(-5e-10));
        assert!(e.violates(-5e-8));
    }

    #[test]
    fn zero_mad_needs_floor() {
        let mut e = entry("m", 1.0, 0.0);
        assert!(e.violates(1.0 + 1e-15));
        e.floor = 1e-12;
        assert!(!e.violates(1.0 + 1e-15));
    }

    #[test]
    fn baseline_json_roundtrip() {
        let b = Baseline {
            name: "level5-serial".to_string(),
            entries: vec![
                BaselineEntry {
                    metric: "core.sim.step_seconds".to_string(),
                    median: 0.0123,
                    mad: 0.0004,
                    count: 20,
                    k: 5.0,
                    floor: 0.001,
                    direction: Direction::Above,
                    severity: Severity::Warn,
                    abs: false,
                },
                BaselineEntry {
                    metric: "core.sim.mass_drift".to_string(),
                    median: 0.0,
                    mad: 0.0,
                    count: 1,
                    k: 0.0,
                    floor: 1e-9,
                    direction: Direction::Above,
                    severity: Severity::Fail,
                    abs: true,
                },
            ],
        };
        let json = b.to_json();
        crate::export::validate_json(&json).expect("baseline JSON must parse");
        let back = Baseline::parse(&json).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn parse_applies_defaults_and_rejects_garbage() {
        let b = Baseline::parse("{\"entries\":[{\"metric\":\"m\",\"median\":2.0}]}").unwrap();
        assert_eq!(b.entries[0].k, 4.0);
        assert_eq!(b.entries[0].direction, Direction::Above);
        assert_eq!(b.entries[0].severity, Severity::Warn);
        assert!(!b.entries[0].abs);
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"entries\":[{\"median\":1}]}").is_err());
        assert!(Baseline::parse(
            "{\"entries\":[{\"metric\":\"m\",\"median\":1,\"direction\":\"up\"}]}"
        )
        .is_err());
    }

    #[test]
    fn evaluate_resolves_gauge_histogram_counter() {
        let rec = Recorder::new();
        rec.set_gauge("g", 5.0);
        rec.record("h", 2.0);
        rec.record("h", 4.0);
        rec.add("c", 7);
        let snap = rec.snapshot();
        let base = Baseline {
            name: "t".into(),
            entries: vec![
                entry("g", 5.0, 0.1),
                entry("h", 3.0, 0.5),
                entry("c", 7.0, 0.5),
            ],
        };
        let out = base.evaluate(&snap);
        assert!(out.checks.iter().all(|c| c.status == GateStatus::Ok));
        assert_eq!(out.checks[0].value, Some(5.0));
        assert_eq!(out.checks[1].value, Some(4.0)); // nearest-rank p50 of {2,4}
        assert_eq!(out.checks[2].value, Some(7.0));
        assert!(!out.failed() && !out.warned());
    }

    #[test]
    fn tightened_baseline_fails_and_warn_only_warns() {
        let rec = Recorder::new();
        rec.set_gauge("time", 10.0);
        let snap = rec.snapshot();
        let mut base = Baseline {
            name: "t".into(),
            entries: vec![entry("time", 1.0, 0.0)], // absurdly tight: fail
        };
        assert!(base.evaluate(&snap).failed());
        base.entries[0].severity = Severity::Warn;
        let out = base.evaluate(&snap);
        assert!(!out.failed() && out.warned());
        assert!(out.render().contains("WARN"));
    }

    #[test]
    fn missing_fail_metric_fails_missing_warn_does_not() {
        let snap = Recorder::new().snapshot();
        let mut base = Baseline {
            name: "t".into(),
            entries: vec![entry("absent", 1.0, 0.0)],
        };
        assert!(base.evaluate(&snap).failed());
        base.entries[0].severity = Severity::Warn;
        assert!(!base.evaluate(&snap).failed());
        assert!(base.evaluate(&snap).warned());
    }
}
