//! Rolling-window aggregation: sliding-window gauges and decaying
//! histograms, queryable mid-run.
//!
//! The post-mortem histograms in [`crate::MetricsSnapshot`] summarize a
//! whole run; a live consumer (the server's `/jobs/{id}/telemetry` and
//! `/metrics/stream` endpoints, or an online rescheduler) wants "the last
//! N seconds". A [`RollingWindow`] keeps `(timestamp, value)` samples,
//! evicts anything older than its window on every push and on every
//! summary, and reports windowed p50/p95/min/max/mean, a per-second rate,
//! and an exponentially-decayed mean (half-life = half the window) that
//! keeps reacting even when the sample set is sparse.
//!
//! Windows are registered per metric name with
//! [`crate::Recorder::rolling_window`]; after that, every matching
//! counter/gauge/histogram write feeds the window transparently (counters
//! feed their *delta*, so the windowed rate is the counter's recent
//! rate). Memory is doubly bounded: by the time window and by
//! [`MAX_WINDOW_SAMPLES`].

use std::collections::VecDeque;

/// Hard cap on retained samples per window, so a hot metric with a long
/// window cannot grow without bound (oldest samples are dropped first).
pub const MAX_WINDOW_SAMPLES: usize = 65_536;

/// Point-in-time summary of one rolling window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowSummary {
    /// Window length, seconds.
    pub window_s: f64,
    /// Samples currently inside the window.
    pub count: usize,
    /// Sum of in-window samples.
    pub sum: f64,
    /// Mean of in-window samples.
    pub mean: f64,
    /// Smallest in-window sample.
    pub min: f64,
    /// Windowed median (nearest-rank).
    pub p50: f64,
    /// Windowed 95th percentile (nearest-rank).
    pub p95: f64,
    /// Largest in-window sample.
    pub max: f64,
    /// In-window samples per second (`count / window_s`).
    pub rate_per_s: f64,
    /// Exponentially-decayed mean (half-life = `window_s / 2`); unlike the
    /// windowed mean it never empties, it just decays toward recency.
    pub ewma: f64,
}

/// A sliding time window over one metric's samples.
#[derive(Debug, Clone)]
pub struct RollingWindow {
    window_s: f64,
    samples: VecDeque<(f64, f64)>,
    ewma: f64,
    ewma_primed: bool,
    last_ts_s: f64,
}

impl RollingWindow {
    /// A window of `window_s` seconds (clamped to a 1 ms minimum).
    pub fn new(window_s: f64) -> Self {
        RollingWindow {
            window_s: window_s.max(1e-3),
            samples: VecDeque::new(),
            ewma: 0.0,
            ewma_primed: false,
            last_ts_s: 0.0,
        }
    }

    /// The configured window length, seconds.
    pub fn window_s(&self) -> f64 {
        self.window_s
    }

    /// Add one sample stamped `ts_s` (seconds on the recorder's clock).
    pub fn push(&mut self, ts_s: f64, value: f64) {
        self.evict(ts_s);
        if self.samples.len() >= MAX_WINDOW_SAMPLES {
            self.samples.pop_front();
        }
        self.samples.push_back((ts_s, value));
        if self.ewma_primed {
            let dt = (ts_s - self.last_ts_s).max(0.0);
            let half_life = self.window_s / 2.0;
            let w = 0.5_f64.powf(dt / half_life);
            self.ewma = w * self.ewma + (1.0 - w) * value;
        } else {
            self.ewma = value;
            self.ewma_primed = true;
        }
        self.last_ts_s = ts_s;
    }

    fn evict(&mut self, now_s: f64) {
        let cutoff = now_s - self.window_s;
        while self.samples.front().is_some_and(|(ts, _)| *ts < cutoff) {
            self.samples.pop_front();
        }
    }

    /// Summarize the window as of `now_s` (evicting stale samples first).
    pub fn summary(&mut self, now_s: f64) -> WindowSummary {
        self.evict(now_s);
        let values: Vec<f64> = self.samples.iter().map(|(_, v)| *v).collect();
        let h = crate::HistogramSummary::from_samples(&values);
        WindowSummary {
            window_s: self.window_s,
            count: h.count,
            sum: h.sum,
            mean: h.mean,
            min: h.min,
            p50: h.p50,
            p95: h.p95,
            max: h.max,
            rate_per_s: h.count as f64 / self.window_s,
            ewma: self.ewma,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_reports_windowed_percentiles() {
        let mut w = RollingWindow::new(10.0);
        for i in 0..10 {
            w.push(i as f64 * 0.1, (i + 1) as f64);
        }
        let s = w.summary(1.0);
        assert_eq!(s.count, 10);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10.0);
        assert_eq!(s.p50, 6.0); // nearest-rank over 1..=10
        assert_eq!(s.sum, 55.0);
        assert!((s.rate_per_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn old_samples_leave_the_window() {
        let mut w = RollingWindow::new(1.0);
        w.push(0.0, 100.0);
        w.push(0.5, 200.0);
        w.push(2.0, 300.0); // evicts both on push
        let s = w.summary(2.0);
        assert_eq!(s.count, 1);
        assert_eq!(s.p50, 300.0);
        // Summary-time eviction too: everything gone 5 s later.
        assert_eq!(w.summary(7.0).count, 0);
    }

    #[test]
    fn ewma_decays_toward_recent_values() {
        let mut w = RollingWindow::new(2.0); // half-life 1 s
        w.push(0.0, 0.0);
        w.push(1.0, 100.0); // one half-life: ewma = 50
        assert!((w.summary(1.0).ewma - 50.0).abs() < 1e-9);
        // Unlike count, ewma survives eviction.
        let s = w.summary(10.0);
        assert_eq!(s.count, 0);
        assert!(s.ewma > 0.0);
    }

    #[test]
    fn sample_cap_bounds_memory() {
        let mut w = RollingWindow::new(1e6);
        for i in 0..(MAX_WINDOW_SAMPLES + 10) {
            w.push(i as f64 * 1e-9, 1.0);
        }
        assert_eq!(w.summary(1.0).count, MAX_WINDOW_SAMPLES);
    }
}
