//! Integration tests for the live observability plane (DESIGN.md §13):
//! flight-ring wraparound, dump-on-anomaly firing exactly once per
//! alerted metric, and scoped-recorder namespace isolation under
//! concurrency — the cross-module behaviors the in-crate unit tests
//! can't exercise end to end.

use mpas_telemetry::analysis::{check_invariants, default_invariants, InvariantMonitor};
use mpas_telemetry::export::validate_json;
use mpas_telemetry::{flight, FlightEvent, Recorder};

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mpas_live_plane_{tag}_{}.json", std::process::id()))
}

#[test]
fn flight_ring_wraps_and_keeps_the_newest_events() {
    let rec = Recorder::with_flight_capacity(16);
    for i in 0..100u64 {
        rec.add("wrap.counter", i);
    }
    assert_eq!(rec.flight_total(), 100);
    let events = rec.flight_events();
    assert_eq!(events.len(), 16);
    // Oldest-first, and exactly the last 16 pushes survive.
    let deltas: Vec<u64> = events
        .iter()
        .map(|e| match e {
            FlightEvent::Counter { delta, .. } => *delta,
            other => panic!("unexpected event {other:?}"),
        })
        .collect();
    assert_eq!(deltas, (84..100).collect::<Vec<u64>>());
    // Timestamps never decrease in a chronological dump.
    for pair in events.windows(2) {
        assert!(pair[0].ts_s() <= pair[1].ts_s());
    }
}

#[test]
fn dump_on_alert_fires_exactly_once_per_metric() {
    let rec = Recorder::new();
    let path = temp_path("dump_once");
    let _ = std::fs::remove_file(&path);
    rec.set_flight_dump(&path);

    // Trip the mass-drift invariant and poll it repeatedly.
    rec.set_gauge("core.sim.mass_drift", 1e-3);
    let monitors = default_invariants();
    for round in 0..3 {
        let alerts = check_invariants(&rec, &monitors);
        assert_eq!(alerts.len(), 1, "round {round}");
        assert_eq!(alerts[0].metric, "core.sim.mass_drift");
    }
    // One dump despite three tripped checks, recorded on the counter and
    // as a flight.dump event.
    let snap = rec.snapshot();
    assert_eq!(snap.counter(mpas_telemetry::names::FLIGHT_DUMPS), Some(1));
    let dumps: Vec<_> = rec
        .events()
        .into_iter()
        .filter(|e| e.name == "flight.dump")
        .collect();
    assert_eq!(dumps.len(), 1);

    // The dump itself is a valid Chrome trace containing the offending
    // gauge's ring entries.
    let trace = std::fs::read_to_string(&path).expect("dump written");
    validate_json(&trace).unwrap_or_else(|at| panic!("invalid dump JSON at byte {at}"));
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("core.sim.mass_drift"));

    // A *different* metric tripping still dumps (once), to the same path.
    rec.set_gauge("core.sim.max_courant", 40.0);
    check_invariants(&rec, &monitors);
    check_invariants(&rec, &monitors);
    assert_eq!(
        rec.snapshot().counter(mpas_telemetry::names::FLIGHT_DUMPS),
        Some(2)
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unarmed_recorder_never_dumps_on_alert() {
    let rec = Recorder::new();
    rec.set_gauge("core.sim.mass_drift", 1.0);
    let alerts = check_invariants(&rec, &default_invariants());
    assert_eq!(alerts.len(), 1);
    assert_eq!(
        rec.snapshot().counter(mpas_telemetry::names::FLIGHT_DUMPS),
        None
    );
    assert!(rec.events().iter().all(|e| e.name != "flight.dump"));
}

#[test]
fn scoped_invariants_can_arm_dump_per_namespace() {
    // A scoped view records gauges under its prefix, so a monitor aimed
    // at the scoped name watches exactly one job.
    let rec = Recorder::new();
    let job = rec.scoped("job7");
    let path = temp_path("scoped_dump");
    let _ = std::fs::remove_file(&path);
    rec.set_flight_dump(&path);
    job.set_gauge("core.sim.mass_drift", 5e-2);
    let monitors = vec![InvariantMonitor {
        metric: "job7.core.sim.mass_drift".to_string(),
        max_abs: 1e-9,
        description: "scoped drift".to_string(),
    }];
    let alerts = check_invariants(&rec, &monitors);
    assert_eq!(alerts.len(), 1);
    assert_eq!(alerts[0].metric, "job7.core.sim.mass_drift");
    let trace = std::fs::read_to_string(&path).expect("dump written");
    assert!(trace.contains("job7.core.sim.mass_drift"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn concurrent_scoped_recorders_do_not_leak_across_namespaces() {
    let rec = Recorder::new();
    let jobs = ["job1", "job2"];
    std::thread::scope(|s| {
        for name in jobs {
            let view = rec.scoped(name);
            s.spawn(move || {
                for i in 0..500u64 {
                    view.add("core.sim.steps", 1);
                    view.set_gauge("core.sim.mass_drift", i as f64 * 1e-15);
                    let _t = view.time("core.sim.step_seconds");
                }
            });
        }
    });
    let snap = rec.snapshot();
    for name in jobs {
        // Each namespace sees exactly its own writes...
        let mine = snap.filtered(&format!("{name}."));
        assert_eq!(mine.counter(&format!("{name}.core.sim.steps")), Some(500));
        assert_eq!(
            mine.histogram(&format!("{name}.core.sim.step_seconds"))
                .map(|h| h.count),
            Some(500)
        );
        // ...and nothing from the other namespace.
        let other = if name == "job1" { "job2." } else { "job1." };
        assert!(mine.counters.keys().all(|k| !k.starts_with(other)));
        assert!(mine.gauges.keys().all(|k| !k.starts_with(other)));
        assert!(mine.histograms.keys().all(|k| !k.starts_with(other)));
    }
    // The shared flight ring slices cleanly per namespace too.
    let events = rec.flight_events();
    let job1 = flight::filter_prefix(&events, "job1.");
    assert!(!job1.is_empty());
    assert!(job1.iter().all(|e| e.name().starts_with("job1.")));
}

#[test]
fn windowed_summaries_are_queryable_mid_run() {
    // Rolling windows answer "what happened recently" while writes keep
    // landing — the mid-run query the server's live endpoints rely on.
    let rec = Recorder::new();
    rec.rolling_window("core.sim.step_seconds", 30.0);
    for i in 1..=20 {
        rec.record("core.sim.step_seconds", i as f64 * 1e-3);
        if i % 5 == 0 {
            let w = rec.windowed("core.sim.step_seconds").expect("registered");
            assert_eq!(w.count, i);
            assert!(w.p95 <= i as f64 * 1e-3 + 1e-12);
        }
    }
    let snap = rec.snapshot();
    assert_eq!(
        snap.window("core.sim.step_seconds").map(|w| w.count),
        Some(20)
    );
}
