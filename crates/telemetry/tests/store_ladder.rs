//! Property tests for the history store's downsampling ladder.
//!
//! The contracts under test, for arbitrary sample sets and step counts:
//!
//! - every ladder level is *consistent with raw*: `count` and the
//!   chunk-tree `sum` are exact (bitwise, including the JSON round
//!   trip), `min`/`max` are exact, and the per-run `p50`/`p95` are the
//!   exact nearest-rank values over the raw samples. Merged step-level
//!   percentiles are estimates whose documented tolerance is the
//!   clamp to `[min, max]` — that bound is asserted, nothing tighter.
//! - compaction (`max_bytes: 0` sheds every raw and steps shard)
//!   preserves per-run summaries and manifests bitwise, while raw
//!   reads report the shard as compacted.
//! - whole-run queries answer from the summary level with exact
//!   agreement against a recompute from raw, for every aggregation.

use mpas_telemetry::store::{
    Agg, HistoryStore, LadderSummary, MetricKind, MetricQuery, Retention, RunFilter, RunManifest,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn tmp(name: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mpas-store-prop-{}-{}-{}",
        name,
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn manifest(steps: usize) -> RunManifest {
    RunManifest::new("5", 3, 0, "simd", 4, "pattern-driven", "serial", 0, steps)
}

fn record_one(store: &HistoryStore, steps: usize, samples: &[f64]) -> std::io::Result<RunManifest> {
    let mut metrics: BTreeMap<String, (MetricKind, Vec<f64>)> = BTreeMap::new();
    metrics.insert(
        "swe.step.seconds".to_string(),
        (MetricKind::Histogram, samples.to_vec()),
    );
    store.record(&manifest(steps), &metrics)
}

/// Exact nearest-rank percentile, the rule the store documents
/// (`idx = round((n - 1) * q)` over the sorted samples).
fn pct(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn samples_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0e6..1.0e6f64, 1..180)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ladder_levels_are_consistent_with_raw(
        samples in samples_strategy(),
        steps in 1usize..16,
    ) {
        let dir = tmp("ladder");
        let store = HistoryStore::open(&dir).unwrap();
        let m = record_one(&store, steps, &samples).unwrap();

        // Level 0 survives the JSON round trip bitwise (shortest
        // round-trip formatting).
        let raw = store.run_raw(&m.run_id, "swe.step.seconds").unwrap().unwrap();
        prop_assert_eq!(raw.len(), samples.len());
        for (a, b) in raw.iter().zip(&samples) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }

        // Level 1: chunks tile the raw shard and each row is the exact
        // summary of its slice.
        let chunk_len = samples.len().div_ceil(steps).max(1);
        let rows = store.run_steps(&m.run_id, "swe.step.seconds").unwrap().unwrap();
        prop_assert_eq!(rows.len(), samples.chunks(chunk_len).count());
        for (row, chunk) in rows.iter().zip(samples.chunks(chunk_len)) {
            let expect = LadderSummary::from_slice(chunk);
            prop_assert_eq!(row.summary.count, expect.count);
            prop_assert_eq!(row.summary.sum.to_bits(), expect.sum.to_bits());
            prop_assert_eq!(row.summary.min.to_bits(), expect.min.to_bits());
            prop_assert_eq!(row.summary.max.to_bits(), expect.max.to_bits());
            prop_assert_eq!(row.summary.p50.to_bits(), expect.p50.to_bits());
            prop_assert_eq!(row.summary.p95.to_bits(), expect.p95.to_bits());
        }

        // Level 2: count exact; sum is the chunk tree (left fold of the
        // per-chunk left folds), bitwise; percentiles exact nearest-rank
        // over the whole run.
        let summary = &store.run_summary(&m.run_id).unwrap()[0].summary;
        prop_assert_eq!(summary.count, samples.len());
        let chunk_tree_sum = samples
            .chunks(chunk_len)
            .map(|c| c.iter().fold(0.0_f64, |a, b| a + b))
            .fold(0.0_f64, |a, b| a + b);
        prop_assert_eq!(summary.sum.to_bits(), chunk_tree_sum.to_bits());
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(summary.min.to_bits(), sorted[0].to_bits());
        prop_assert_eq!(summary.max.to_bits(), sorted.last().unwrap().to_bits());
        prop_assert_eq!(summary.p50.to_bits(), pct(&sorted, 0.50).to_bits());
        prop_assert_eq!(summary.p95.to_bits(), pct(&sorted, 0.95).to_bits());

        // Merging the step rows reproduces count/sum/min/max exactly;
        // its percentiles are estimates whose documented tolerance is
        // the clamp to [min, max].
        let parts: Vec<LadderSummary> = rows.iter().map(|r| r.summary).collect();
        let merged = LadderSummary::merge(&parts);
        prop_assert_eq!(merged.count, summary.count);
        prop_assert_eq!(merged.sum.to_bits(), summary.sum.to_bits());
        prop_assert_eq!(merged.min.to_bits(), summary.min.to_bits());
        prop_assert_eq!(merged.max.to_bits(), summary.max.to_bits());
        prop_assert!(merged.p50 >= summary.min && merged.p50 <= summary.max);
        prop_assert!(merged.p95 >= summary.min && merged.p95 <= summary.max);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn whole_run_queries_answer_every_agg_exactly_from_the_summary(
        samples in samples_strategy(),
        steps in 1usize..16,
    ) {
        let dir = tmp("aggs");
        let store = HistoryStore::open(&dir).unwrap();
        record_one(&store, steps, &samples).unwrap();

        let chunk_len = samples.len().div_ceil(steps).max(1);
        let chunk_tree_sum = samples
            .chunks(chunk_len)
            .map(|c| c.iter().fold(0.0_f64, |a, b| a + b))
            .fold(0.0_f64, |a, b| a + b);
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect = [
            (Agg::Count, samples.len() as f64),
            (Agg::Sum, chunk_tree_sum),
            (Agg::Mean, chunk_tree_sum / samples.len() as f64),
            (Agg::P50, pct(&sorted, 0.50)),
            (Agg::P95, pct(&sorted, 0.95)),
            (Agg::Max, *sorted.last().unwrap()),
            (Agg::Min, sorted[0]),
        ];
        for (agg, want) in expect {
            let rows = store
                .query(&MetricQuery {
                    name_prefix: "swe.".to_string(),
                    run_filter: RunFilter::default(),
                    range: None,
                    agg,
                })
                .unwrap();
            prop_assert_eq!(rows.len(), 1);
            prop_assert_eq!(rows[0].level, "summary");
            prop_assert_eq!(rows[0].value.to_bits(), want.to_bits(), "agg {:?}", agg);
        }
        // None of those answers touched a finer shard.
        prop_assert_eq!(store.raw_shard_reads(), 0);
        prop_assert_eq!(store.shard_reads().steps, 0);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_round_trip_preserves_summaries_bitwise(
        runs in proptest::collection::vec((samples_strategy(), 1usize..16), 1..4),
    ) {
        let dir = tmp("compact");
        let store = HistoryStore::open(&dir).unwrap();
        let mut recorded = Vec::new();
        for (samples, steps) in &runs {
            recorded.push(record_one(&store, *steps, samples).unwrap());
        }
        let before: Vec<_> = recorded
            .iter()
            .map(|m| store.run_summary(&m.run_id).unwrap())
            .collect();

        // max_bytes 0 sheds every raw + steps shard but must not touch
        // a manifest or a summary.
        let report = store
            .compact(&Retention { max_runs: 256, max_bytes: 0 })
            .unwrap();
        prop_assert_eq!(report.compacted_runs.len(), recorded.len());
        prop_assert!(report.removed_runs.is_empty());

        for (m, want) in recorded.iter().zip(&before) {
            let after = store.run_summary(&m.run_id).unwrap();
            prop_assert_eq!(after.len(), want.len());
            for (a, w) in after.iter().zip(want) {
                prop_assert_eq!(&a.metric, &w.metric);
                prop_assert_eq!(a.kind, w.kind);
                prop_assert_eq!(a.summary.count, w.summary.count);
                prop_assert_eq!(a.summary.sum.to_bits(), w.summary.sum.to_bits());
                prop_assert_eq!(a.summary.min.to_bits(), w.summary.min.to_bits());
                prop_assert_eq!(a.summary.p50.to_bits(), w.summary.p50.to_bits());
                prop_assert_eq!(a.summary.p95.to_bits(), w.summary.p95.to_bits());
                prop_assert_eq!(a.summary.max.to_bits(), w.summary.max.to_bits());
            }
            prop_assert_eq!(store.manifest(&m.run_id).unwrap(), m.clone());
            let err = store.run_raw(&m.run_id, "swe.step.seconds").unwrap_err();
            prop_assert!(err.to_string().contains("compacted"), "err: {err}");
            // Whole-run queries still answer post-compaction.
            let rows = store
                .query(&MetricQuery {
                    name_prefix: String::new(),
                    run_filter: RunFilter {
                        run_ids: vec![m.run_id.clone()],
                        ..RunFilter::default()
                    },
                    range: None,
                    agg: Agg::P50,
                })
                .unwrap();
            prop_assert_eq!(rows.len(), want.len());
        }

        std::fs::remove_dir_all(&dir).ok();
    }
}
