//! Real (measured) threaded executors.
//!
//! [`ParallelModel`] runs the exact serial kernel bodies over chunked output
//! ranges on a rayon pool — the OpenMP analog: one parallel region per
//! kernel, regularity-aware loops, no data races by construction (each
//! chunk owns a disjoint `&mut` window of the output field).
//!
//! [`HybridModel`] adds the paper's device split: every heavy pattern's
//! output range is divided between two thread pools standing in for the
//! host CPU and the accelerator, joined per pattern — the execution shape
//! of Fig. 4 (b). On this machine both pools share silicon, so wall-clock
//! gains are measured on multicore hosts and *modeled* via `crate::sched`
//! elsewhere; what is verified here is bit-for-bit agreement with the
//! serial code (the paper's §V.A validation).

use crate::device::Platform;
use mpas_mesh::Mesh;
use mpas_swe::coeffs::KernelCoeffs;
use mpas_swe::config::ModelConfig;
use mpas_swe::kernels::{dispatch, ops};
use mpas_swe::reconstruct::ReconstructCoeffs;
use mpas_swe::rk4::{RK_SUBSTEP, RK_WEIGHTS};
use mpas_swe::state::{Diagnostics, Reconstruction, State};
use mpas_swe::testcases::TestCase;
use mpas_swe::Tendencies;
use mpas_telemetry::{Recorder, SpanGuard};
use rayon::ThreadPool;
use std::ops::Range;
use std::sync::Arc;

/// Open a `measured`-track span + `hybrid.kernel.<label>.seconds` histogram
/// timer for one Table-I kernel, or `None` (no allocation, one branch) when
/// telemetry is off.
fn kernel_timer(rec: &Recorder, label: &str) -> Option<SpanGuard> {
    if rec.is_enabled() {
        Some(rec.span_timed("measured", label, &format!("hybrid.kernel.{label}.seconds")))
    } else {
        None
    }
}

/// Run a range-convention op over `out` in parallel chunks on a pool.
fn par_run<F>(pool: &ThreadPool, out: &mut [f64], chunk: usize, f: F)
where
    F: Fn(Range<usize>, &mut [f64]) + Sync,
{
    use rayon::prelude::*;
    pool.install(|| {
        out.par_chunks_mut(chunk).enumerate().for_each(|(k, c)| {
            let start = k * chunk;
            f(start..start + c.len(), c);
        });
    });
}

/// Split `out` at `mid` and run the two halves concurrently on two pools
/// (host part on `cpu`, device part on `acc`) — one "adjustable" pattern.
fn split_run<F>(cpu: &ThreadPool, acc: &ThreadPool, out: &mut [f64], mid: usize, chunk: usize, f: F)
where
    F: Fn(Range<usize>, &mut [f64]) + Sync,
{
    let mid = mid.min(out.len());
    let (lo, hi) = out.split_at_mut(mid);
    let n = mid + hi.len();
    rayon::join(
        || par_run(cpu, lo, chunk, |r, c| f(r, c)),
        || {
            par_run(acc, hi, chunk, |r, c| {
                let shifted = (r.start + mid)..(r.end + mid).min(n);
                f(shifted, c)
            })
        },
    );
}

/// [`split_run`] with telemetry: the whole pattern is timed under
/// `hybrid.kernel.<label>.seconds`, and each half under
/// `hybrid.split.<label>.{cpu,acc}.seconds` so the two pools' shares of one
/// adjustable pattern can be compared in the metrics snapshot.
#[allow(clippy::too_many_arguments)]
fn split_run_timed<F>(
    cpu: &ThreadPool,
    acc: &ThreadPool,
    rec: &Recorder,
    label: &str,
    out: &mut [f64],
    mid: usize,
    chunk: usize,
    f: F,
) where
    F: Fn(Range<usize>, &mut [f64]) + Sync,
{
    let _g = kernel_timer(rec, label);
    if !rec.is_enabled() {
        return split_run(cpu, acc, out, mid, chunk, f);
    }
    let metric_cpu = format!("hybrid.split.{label}.cpu.seconds");
    let metric_acc = format!("hybrid.split.{label}.acc.seconds");
    let mid = mid.min(out.len());
    let (lo, hi) = out.split_at_mut(mid);
    let n = mid + hi.len();
    rayon::join(
        || {
            let _t = rec.time(&metric_cpu);
            par_run(cpu, lo, chunk, |r, c| f(r, c))
        },
        || {
            let _t = rec.time(&metric_acc);
            par_run(acc, hi, chunk, |r, c| {
                let shifted = (r.start + mid)..(r.end + mid).min(n);
                f(shifted, c)
            })
        },
    );
}

/// A threaded shallow-water model numerically identical to
/// [`mpas_swe::ShallowWaterModel`].
pub struct ParallelModel {
    /// The mesh being integrated.
    pub mesh: Arc<Mesh>,
    /// Numerical options.
    pub config: ModelConfig,
    /// Prognostic state.
    pub state: State,
    /// Current diagnostics (consistent with `state`).
    pub diag: Diagnostics,
    /// Reconstructed cell-center velocities.
    pub recon: Reconstruction,
    /// Bottom topography at cells.
    pub b: Vec<f64>,
    /// Coriolis parameter at vertices.
    pub f_vertex: Vec<f64>,
    /// Velocity-reconstruction coefficients.
    pub coeffs: ReconstructCoeffs,
    /// Precomputed fused kernel coefficients (read by the fused and simd
    /// backends of `config.kernel_backend`). Shared so multi-tenant servers can
    /// reuse one table across concurrent models on the same mesh/config.
    pub kcoeffs: Arc<KernelCoeffs>,
    /// Fixed per-stage forcing tendency (Williamson case 4), identical to
    /// the serial model's — computed once at init with the serial kernels.
    pub forcing: Option<Tendencies>,
    tend: Tendencies,
    provis: State,
    acc_state: State,
    pool: ThreadPool,
    chunk: usize,
    /// Model time in seconds.
    pub time: f64,
    /// Time-step size in seconds.
    pub dt: f64,
    /// Telemetry sink (`hybrid.kernel.*` timers, step spans); no-op by default.
    recorder: Recorder,
}

impl ParallelModel {
    /// Build with `n_threads` workers.
    pub fn new(
        mesh: Arc<Mesh>,
        config: ModelConfig,
        test_case: TestCase,
        dt: Option<f64>,
        n_threads: usize,
    ) -> Self {
        Self::new_shared(mesh, config, test_case, dt, n_threads, None)
    }

    /// Like [`ParallelModel::new`], but reuse an already-built coefficient
    /// table (it must have been built for this exact mesh and config).
    /// `None` builds a fresh table.
    pub fn new_shared(
        mesh: Arc<Mesh>,
        config: ModelConfig,
        test_case: TestCase,
        dt: Option<f64>,
        n_threads: usize,
        shared_coeffs: Option<Arc<KernelCoeffs>>,
    ) -> Self {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(n_threads)
            .build()
            .expect("pool");
        let state = test_case.initial_state_with_tracers(&mesh, config.n_tracers);
        let b = test_case.topography(&mesh);
        let f_vertex = test_case.coriolis_vertex(&mesh);
        let coeffs = ReconstructCoeffs::build(&mesh);
        let kcoeffs =
            shared_coeffs.unwrap_or_else(|| Arc::new(KernelCoeffs::build(&mesh, &config)));
        let dt = dt.unwrap_or_else(|| ModelConfig::suggested_dt(&mesh));
        let forcing = test_case.needs_forcing().then(|| {
            mpas_swe::model::compute_equilibrium_forcing(
                &mesh, &config, &kcoeffs, &test_case, &b, &f_vertex, dt,
            )
        });
        let chunk = (mesh.n_edges() / (4 * n_threads).max(1)).max(512);
        let mut m = ParallelModel {
            forcing,
            tend: Tendencies::zeros_with_tracers(&mesh, config.n_tracers),
            provis: State::zeros_with_tracers(&mesh, config.n_tracers),
            acc_state: State::zeros_with_tracers(&mesh, config.n_tracers),
            diag: Diagnostics::zeros(&mesh),
            recon: Reconstruction::zeros(&mesh),
            state,
            b,
            f_vertex,
            coeffs,
            kcoeffs,
            pool,
            chunk,
            config,
            time: 0.0,
            dt,
            mesh,
            recorder: Recorder::noop(),
        };
        m.solve_diagnostics_on(Which::State);
        m
    }

    /// Route this model's `hybrid.*` telemetry (per-kernel timers keyed by
    /// Table-I label, step spans) into `rec`.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = rec;
        self
    }

    /// Route this model's `hybrid.*` telemetry into `rec`.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.recorder = rec;
    }

    /// The telemetry sink.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    fn solve_diagnostics_on(&mut self, which: Which) {
        let (h, u): (&[f64], &[f64]) = match which {
            Which::State => (&self.state.h, &self.state.u),
            Which::Provis => (&self.provis.h, &self.provis.u),
        };
        let mesh = &self.mesh;
        let config = &self.config;
        let kc = &self.kcoeffs;
        let backend = config.kernel_backend;
        let dt = self.dt;
        let chunk = self.chunk;
        let pool = &self.pool;
        let rec = self.recorder.clone();
        let d = &mut self.diag;
        if config.high_order_h_edge {
            // Two outputs: run serially chunked on the pool via zip ranges.
            // (d2fdx2 writes two arrays; parallelize over edges by chunking
            // both with the same geometry.)
            let _g = kernel_timer(&rec, "D1D2");
            let (o1, o2) = (&mut d.d2fdx2_cell1, &mut d.d2fdx2_cell2);
            pool.install(|| {
                use rayon::prelude::*;
                o1.par_chunks_mut(chunk)
                    .zip(o2.par_chunks_mut(chunk))
                    .enumerate()
                    .for_each(|(k, (c1, c2))| {
                        let s = k * chunk;
                        dispatch::d2fdx2(backend, mesh, kc, h, c1, c2, s..s + c1.len())
                    });
            });
        }
        {
            let _g = kernel_timer(&rec, "H2");
            if config.high_order_h_edge {
                let d1 = d.d2fdx2_cell1.clone();
                let d2 = d.d2fdx2_cell2.clone();
                par_run(pool, &mut d.h_edge, chunk, |r, o| {
                    dispatch::h_edge(backend, mesh, kc, config, h, &d1, &d2, o, r)
                });
            } else {
                par_run(pool, &mut d.h_edge, chunk, |r, o| {
                    ops::h_edge(mesh, config, h, &[], &[], o, r)
                });
            }
        }
        if config.advection_only {
            // Williamson TC1: only the thickness flux is needed (the PV
            // chain would divide by the zero-thickness tracer field) —
            // mirror the serial composite's early return.
            return;
        }
        {
            let _g = kernel_timer(&rec, "C2");
            par_run(pool, &mut d.vorticity, chunk, |r, o| {
                dispatch::vorticity(backend, mesh, kc, u, o, r)
            });
        }
        {
            let _g = kernel_timer(&rec, "A2");
            par_run(pool, &mut d.ke, chunk, |r, o| {
                dispatch::ke(backend, mesh, kc, u, o, r)
            });
        }
        {
            let _g = kernel_timer(&rec, "B2");
            par_run(pool, &mut d.divergence, chunk, |r, o| {
                dispatch::divergence(backend, mesh, kc, u, o, r)
            });
        }
        {
            let _g = kernel_timer(&rec, "H1");
            par_run(pool, &mut d.v, chunk, |r, o| {
                ops::tangential_velocity(mesh, u, o, r)
            });
        }
        let vort = &d.vorticity;
        {
            let _g = kernel_timer(&rec, "A3");
            par_run(pool, &mut d.vorticity_cell, chunk, |r, o| {
                dispatch::vorticity_cell(backend, mesh, kc, vort, o, r)
            });
        }
        let f_vertex = &self.f_vertex;
        {
            let _g = kernel_timer(&rec, "E");
            par_run(pool, &mut d.pv_vertex, chunk, |r, o| {
                ops::pv_vertex(mesh, h, vort, f_vertex, o, r)
            });
        }
        let pvv = &d.pv_vertex;
        {
            let _g = kernel_timer(&rec, "F");
            par_run(pool, &mut d.pv_cell, chunk, |r, o| {
                dispatch::pv_cell(backend, mesh, kc, pvv, o, r)
            });
        }
        let pvc = &d.pv_cell;
        let v = &d.v;
        {
            let _g = kernel_timer(&rec, "G");
            par_run(pool, &mut d.pv_edge, chunk, |r, o| {
                dispatch::pv_edge(
                    backend,
                    mesh,
                    kc,
                    config.apvm_factor,
                    dt,
                    pvv,
                    pvc,
                    u,
                    v,
                    o,
                    r,
                )
            });
        }
    }

    fn compute_tend_on(&mut self) {
        let mesh = &self.mesh;
        let config = &self.config;
        let kc = &self.kcoeffs;
        let backend = config.kernel_backend;
        let chunk = self.chunk;
        let pool = &self.pool;
        let rec = self.recorder.clone();
        let (h, u) = (&self.provis.h, &self.provis.u);
        let d = &self.diag;
        let b = &self.b;
        {
            let _g = kernel_timer(&rec, "A1");
            par_run(pool, &mut self.tend.tend_h, chunk, |r, o| {
                dispatch::tend_h(backend, mesh, kc, u, &d.h_edge, o, r)
            });
        }
        if config.advection_only {
            // Williamson TC1 holds the wind fixed: the u-tendency is
            // identically zero, matching the serial composite's early-out.
            self.tend.tend_u.fill(0.0);
        } else {
            let _g = kernel_timer(&rec, "B1");
            par_run(pool, &mut self.tend.tend_u, chunk, |r, o| {
                dispatch::tend_u(
                    backend,
                    mesh,
                    kc,
                    config.gravity,
                    &d.pv_edge,
                    u,
                    &d.h_edge,
                    &d.ke,
                    h,
                    b,
                    o,
                    r,
                )
            });
        }
        if !config.advection_only && config.del2_viscosity != 0.0 {
            let _g = kernel_timer(&rec, "C1");
            par_run(pool, &mut self.tend.tend_u, chunk, |r, o| {
                dispatch::tend_u_del2(
                    backend,
                    mesh,
                    kc,
                    config.del2_viscosity,
                    &d.divergence,
                    &d.vorticity,
                    o,
                    r,
                )
            });
        }
        if !config.advection_only && config.del4_viscosity != 0.0 {
            // The del4 chain has no single Table-I label; time it as a unit.
            let _g = kernel_timer(&rec, "del4");
            let (ne, nc, nv) = (mesh.n_edges(), mesh.n_cells(), mesh.n_vertices());
            let mut lap = vec![0.0; ne];
            par_run(pool, &mut lap, chunk, |r, o| {
                dispatch::lap_u(backend, mesh, kc, &d.divergence, &d.vorticity, o, r)
            });
            let mut div_lap = vec![0.0; nc];
            par_run(pool, &mut div_lap, chunk, |r, o| {
                dispatch::divergence(backend, mesh, kc, &lap, o, r)
            });
            let mut vort_lap = vec![0.0; nv];
            par_run(pool, &mut vort_lap, chunk, |r, o| {
                dispatch::vorticity(backend, mesh, kc, &lap, o, r)
            });
            par_run(pool, &mut self.tend.tend_u, chunk, |r, o| {
                dispatch::tend_u_del4(
                    backend,
                    mesh,
                    kc,
                    config.del4_viscosity,
                    &div_lap,
                    &vort_lap,
                    o,
                    r,
                )
            });
        }
        if !self.provis.tracers.is_empty() {
            let _g = kernel_timer(&rec, "T1");
            let tracers = &self.provis.tracers;
            let h_edge = &d.h_edge;
            for (k, out) in self.tend.tend_tracers.iter_mut().enumerate() {
                let hq = &tracers[k];
                par_run(pool, out, chunk, |r, o| {
                    dispatch::tend_tracer(backend, mesh, kc, u, h_edge, h, hq, o, r)
                });
            }
        }
        if let Some(f) = &self.forcing {
            // Pattern F1: exact +1.0-weighted accumulate, same as serial.
            let _g = kernel_timer(&rec, "F1");
            let (fh, fu_) = (&f.tend_h, &f.tend_u);
            par_run(pool, &mut self.tend.tend_h, chunk, |r, o| {
                ops::accumulate(fh, 1.0, o, r)
            });
            par_run(pool, &mut self.tend.tend_u, chunk, |r, o| {
                ops::accumulate(fu_, 1.0, o, r)
            });
        }
        {
            let _g = kernel_timer(&rec, "X1");
            par_run(pool, &mut self.tend.tend_u, chunk, |r, o| {
                ops::enforce_boundary(mesh, o, r)
            });
        }
    }

    /// One RK-4 step, multithreaded.
    pub fn step(&mut self) {
        let rec = self.recorder.clone();
        let _step = if rec.is_enabled() {
            Some(rec.span_timed("measured", "step", "hybrid.step_seconds"))
        } else {
            None
        };
        self.acc_state.copy_from(&self.state);
        self.provis.copy_from(&self.state);
        // `stage` is the RK stage number, not just an index into RK_SUBSTEP.
        #[allow(clippy::needless_range_loop)]
        for stage in 0..4 {
            let _sub = if rec.is_enabled() {
                Some(rec.span("measured", &format!("rk.stage{stage}")))
            } else {
                None
            };
            self.compute_tend_on();
            let dt = self.dt;
            let chunk = self.chunk;
            if stage < 3 {
                {
                    let (mesh, pool) = (&self.mesh, &self.pool);
                    let _ = mesh;
                    let base_h = &self.state.h;
                    let tend_h = &self.tend.tend_h;
                    let _g = kernel_timer(&rec, "X2");
                    par_run(pool, &mut self.provis.h, chunk, |r, o| {
                        ops::axpy(base_h, tend_h, RK_SUBSTEP[stage] * dt, o, r)
                    });
                    drop(_g);
                    let base_u = &self.state.u;
                    let tend_u = &self.tend.tend_u;
                    let _g = kernel_timer(&rec, "X3");
                    par_run(pool, &mut self.provis.u, chunk, |r, o| {
                        ops::axpy(base_u, tend_u, RK_SUBSTEP[stage] * dt, o, r)
                    });
                    drop(_g);
                    for (k, out) in self.provis.tracers.iter_mut().enumerate() {
                        let base = &self.state.tracers[k];
                        let tt = &self.tend.tend_tracers[k];
                        par_run(pool, out, chunk, |r, o| {
                            ops::axpy(base, tt, RK_SUBSTEP[stage] * dt, o, r)
                        });
                    }
                }
                self.solve_diagnostics_on(Which::Provis);
                self.accumulate(stage);
            } else {
                self.accumulate(stage);
                self.state.copy_from(&self.acc_state);
                self.solve_diagnostics_on(Which::State);
                self.reconstruct();
            }
        }
        self.time += self.dt;
    }

    fn accumulate(&mut self, stage: usize) {
        let (chunk, dt) = (self.chunk, self.dt);
        let pool = &self.pool;
        let rec = self.recorder.clone();
        let tend_h = &self.tend.tend_h;
        {
            let _g = kernel_timer(&rec, "X4");
            par_run(pool, &mut self.acc_state.h, chunk, |r, o| {
                ops::accumulate(tend_h, RK_WEIGHTS[stage] * dt, o, r)
            });
        }
        let tend_u = &self.tend.tend_u;
        {
            let _g = kernel_timer(&rec, "X5");
            par_run(pool, &mut self.acc_state.u, chunk, |r, o| {
                ops::accumulate(tend_u, RK_WEIGHTS[stage] * dt, o, r)
            });
        }
        for (k, out) in self.acc_state.tracers.iter_mut().enumerate() {
            let tt = &self.tend.tend_tracers[k];
            par_run(pool, out, chunk, |r, o| {
                ops::accumulate(tt, RK_WEIGHTS[stage] * dt, o, r)
            });
        }
    }

    fn reconstruct(&mut self) {
        let mesh = &self.mesh;
        let coeffs = &self.coeffs;
        let u = &self.state.u;
        let chunk = self.chunk;
        let pool = &self.pool;
        let rec = self.recorder.clone();
        let r = &mut self.recon;
        {
            let _g = kernel_timer(&rec, "A4");
            pool.install(|| {
                use rayon::prelude::*;
                r.ux.par_chunks_mut(chunk)
                    .zip(r.uy.par_chunks_mut(chunk))
                    .zip(r.uz.par_chunks_mut(chunk))
                    .enumerate()
                    .for_each(|(k, ((cx, cy), cz))| {
                        let s = k * chunk;
                        ops::reconstruct_xyz(mesh, coeffs, u, cx, cy, cz, s..s + cx.len());
                    });
            });
        }
        let (ux, uy, uz) = (r.ux.clone(), r.uy.clone(), r.uz.clone());
        {
            let _g = kernel_timer(&rec, "X6");
            pool.install(|| {
                use rayon::prelude::*;
                r.zonal
                    .par_chunks_mut(chunk)
                    .zip(r.meridional.par_chunks_mut(chunk))
                    .enumerate()
                    .for_each(|(k, (cz, cm))| {
                        let s = k * chunk;
                        ops::zonal_meridional(mesh, &ux, &uy, &uz, cz, cm, s..s + cz.len());
                    });
            });
        }
    }

    /// Advance `n` steps.
    pub fn run_steps(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }
}

#[derive(Clone, Copy)]
enum Which {
    State,
    Provis,
}

/// Two-pool hybrid executor: every heavy pattern splits its range between a
/// "CPU" pool and an "accelerator" pool at the platform's throughput ratio.
pub struct HybridModel {
    inner: ParallelModel,
    acc_pool: ThreadPool,
    /// Fraction of each splittable range handled by the accelerator pool.
    pub acc_fraction: f64,
}

impl HybridModel {
    /// Build with `cpu_threads`/`acc_threads` workers and a split derived
    /// from the platform's relative bandwidths.
    pub fn new(
        mesh: Arc<Mesh>,
        config: ModelConfig,
        test_case: TestCase,
        dt: Option<f64>,
        cpu_threads: usize,
        acc_threads: usize,
        platform: &Platform,
    ) -> Self {
        Self::new_shared(
            mesh,
            config,
            test_case,
            dt,
            cpu_threads,
            acc_threads,
            platform,
            None,
        )
    }

    /// Like [`HybridModel::new`], but reuse an already-built coefficient
    /// table (it must have been built for this exact mesh and config).
    #[allow(clippy::too_many_arguments)]
    pub fn new_shared(
        mesh: Arc<Mesh>,
        config: ModelConfig,
        test_case: TestCase,
        dt: Option<f64>,
        cpu_threads: usize,
        acc_threads: usize,
        platform: &Platform,
        shared_coeffs: Option<Arc<KernelCoeffs>>,
    ) -> Self {
        let inner =
            ParallelModel::new_shared(mesh, config, test_case, dt, cpu_threads, shared_coeffs);
        let acc_pool = rayon::ThreadPoolBuilder::new()
            .num_threads(acc_threads)
            .build()
            .expect("pool");
        let acc_fraction = platform.acc.mem_bw / (platform.acc.mem_bw + platform.cpu.mem_bw);
        HybridModel {
            inner,
            acc_pool,
            acc_fraction,
        }
    }

    /// Route this model's `hybrid.*` telemetry (per-kernel and per-pool
    /// split timers, step spans) into `rec`.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.inner.set_recorder(rec);
        self
    }

    /// Route this model's `hybrid.*` telemetry into `rec`.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.inner.set_recorder(rec);
    }

    /// The telemetry sink.
    pub fn recorder(&self) -> &Recorder {
        self.inner.recorder()
    }

    /// The prognostic state.
    pub fn state(&self) -> &State {
        &self.inner.state
    }

    /// The current diagnostics (consistent with the state).
    pub fn diag(&self) -> &Diagnostics {
        &self.inner.diag
    }

    /// Time-step size in seconds.
    pub fn dt(&self) -> f64 {
        self.inner.dt
    }

    /// Model time in seconds.
    pub fn time(&self) -> f64 {
        self.inner.time
    }

    /// One RK-4 step with split execution of the dominant patterns.
    ///
    /// Numerics are identical to the serial code: splitting only changes
    /// *which pool* computes each output index, never the arithmetic.
    pub fn step(&mut self) {
        // The diagnostics + tendency patterns dominate; exercise the split
        // machinery on the three biggest edge-space patterns each stage.
        let m = &mut self.inner;
        let rec = m.recorder.clone();
        let _step = if rec.is_enabled() {
            Some(rec.span_timed("measured", "step", "hybrid.step_seconds"))
        } else {
            None
        };
        m.acc_state.copy_from(&m.state);
        m.provis.copy_from(&m.state);
        // `stage` is the RK stage number, not just an index into RK_SUBSTEP.
        #[allow(clippy::needless_range_loop)]
        for stage in 0..4 {
            let _sub = if rec.is_enabled() {
                Some(rec.span("measured", &format!("rk.stage{stage}")))
            } else {
                None
            };
            {
                let mesh = &m.mesh;
                let config = &m.config;
                let kc = &m.kcoeffs;
                let backend = config.kernel_backend;
                let (h, u) = (&m.provis.h, &m.provis.u);
                let d = &m.diag;
                let b = &m.b;
                let mid = ((1.0 - self.acc_fraction) * mesh.n_edges() as f64) as usize;
                if config.advection_only {
                    // Williamson TC1 holds the wind fixed, exactly like the
                    // serial composite's early-out.
                    m.tend.tend_u.fill(0.0);
                } else {
                    split_run_timed(
                        &m.pool,
                        &self.acc_pool,
                        &rec,
                        "B1",
                        &mut m.tend.tend_u,
                        mid,
                        m.chunk,
                        |r, o| {
                            dispatch::tend_u(
                                backend,
                                mesh,
                                kc,
                                config.gravity,
                                &d.pv_edge,
                                u,
                                &d.h_edge,
                                &d.ke,
                                h,
                                b,
                                o,
                                r,
                            )
                        },
                    );
                }
                let mid_c = ((1.0 - self.acc_fraction) * mesh.n_cells() as f64) as usize;
                split_run_timed(
                    &m.pool,
                    &self.acc_pool,
                    &rec,
                    "A1",
                    &mut m.tend.tend_h,
                    mid_c,
                    m.chunk,
                    |r, o| dispatch::tend_h(backend, mesh, kc, u, &d.h_edge, o, r),
                );
                if !config.advection_only && config.del2_viscosity != 0.0 {
                    let _g = kernel_timer(&rec, "C1");
                    par_run(&m.pool, &mut m.tend.tend_u, m.chunk, |r, o| {
                        dispatch::tend_u_del2(
                            backend,
                            mesh,
                            kc,
                            config.del2_viscosity,
                            &d.divergence,
                            &d.vorticity,
                            o,
                            r,
                        )
                    });
                }
                if !m.provis.tracers.is_empty() {
                    // Tracer advection is a heavy cell pattern: split it
                    // across the two pools like A1.
                    let tracers = &m.provis.tracers;
                    let h_edge = &d.h_edge;
                    for (k, out) in m.tend.tend_tracers.iter_mut().enumerate() {
                        let hq = &tracers[k];
                        split_run_timed(
                            &m.pool,
                            &self.acc_pool,
                            &rec,
                            "T1",
                            out,
                            mid_c,
                            m.chunk,
                            |r, o| dispatch::tend_tracer(backend, mesh, kc, u, h_edge, h, hq, o, r),
                        );
                    }
                }
                if let Some(f) = &m.forcing {
                    let _g = kernel_timer(&rec, "F1");
                    let (fh, fu_) = (&f.tend_h, &f.tend_u);
                    par_run(&m.pool, &mut m.tend.tend_h, m.chunk, |r, o| {
                        ops::accumulate(fh, 1.0, o, r)
                    });
                    par_run(&m.pool, &mut m.tend.tend_u, m.chunk, |r, o| {
                        ops::accumulate(fu_, 1.0, o, r)
                    });
                }
                {
                    let _g = kernel_timer(&rec, "X1");
                    par_run(&m.pool, &mut m.tend.tend_u, m.chunk, |r, o| {
                        ops::enforce_boundary(mesh, o, r)
                    });
                }
            }
            let dt = m.dt;
            if stage < 3 {
                let chunk = m.chunk;
                {
                    let base_h = &m.state.h;
                    let tend_h = &m.tend.tend_h;
                    par_run(&m.pool, &mut m.provis.h, chunk, |r, o| {
                        ops::axpy(base_h, tend_h, RK_SUBSTEP[stage] * dt, o, r)
                    });
                    let base_u = &m.state.u;
                    let tend_u = &m.tend.tend_u;
                    par_run(&m.pool, &mut m.provis.u, chunk, |r, o| {
                        ops::axpy(base_u, tend_u, RK_SUBSTEP[stage] * dt, o, r)
                    });
                    for (k, out) in m.provis.tracers.iter_mut().enumerate() {
                        let base = &m.state.tracers[k];
                        let tt = &m.tend.tend_tracers[k];
                        par_run(&m.pool, out, chunk, |r, o| {
                            ops::axpy(base, tt, RK_SUBSTEP[stage] * dt, o, r)
                        });
                    }
                }
                m.solve_diagnostics_on(Which::Provis);
                m.accumulate(stage);
            } else {
                m.accumulate(stage);
                m.state.copy_from(&m.acc_state);
                m.solve_diagnostics_on(Which::State);
                m.reconstruct();
            }
        }
        m.time += m.dt;
    }

    /// Advance `n` steps.
    pub fn run_steps(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Arc<Mesh> {
        Arc::new(mpas_mesh::generate(3, 0))
    }

    #[test]
    fn parallel_model_matches_serial_bitwise() {
        let mesh = mesh();
        let tc = TestCase::Case5;
        let cfg = ModelConfig::default();
        let mut serial = mpas_swe::ShallowWaterModel::new(mesh.clone(), cfg, tc, None);
        let mut par = ParallelModel::new(mesh, cfg, tc, None, 3);
        serial.run_steps(5);
        par.run_steps(5);
        assert_eq!(
            serial.state.max_abs_diff(&par.state),
            0.0,
            "threaded result differs from serial"
        );
    }

    #[test]
    fn hybrid_model_matches_serial_bitwise() {
        let mesh = mesh();
        let tc = TestCase::Case6;
        let cfg = ModelConfig::default();
        let mut serial = mpas_swe::ShallowWaterModel::new(mesh.clone(), cfg, tc, None);
        let mut hyb = HybridModel::new(mesh, cfg, tc, None, 2, 2, &Platform::paper_node());
        serial.run_steps(4);
        hyb.run_steps(4);
        assert_eq!(serial.state.max_abs_diff(hyb.state()), 0.0);
    }

    #[test]
    fn split_fraction_reflects_platform() {
        let p = Platform::paper_node();
        let hm = HybridModel::new(
            mesh(),
            ModelConfig::default(),
            TestCase::Case5,
            None,
            1,
            1,
            &p,
        );
        assert!(
            hm.acc_fraction > 0.5,
            "accelerator should take the majority"
        );
        assert!(hm.acc_fraction < 0.8);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let mesh = mesh();
        let tc = TestCase::Case2 { alpha: 0.4 };
        let cfg = ModelConfig::default();
        let mut one = ParallelModel::new(mesh.clone(), cfg, tc, None, 1);
        let mut four = ParallelModel::new(mesh, cfg, tc, None, 4);
        one.run_steps(3);
        four.run_steps(3);
        assert_eq!(one.state.max_abs_diff(&four.state), 0.0);
    }
}
