//! Descriptors of the Table-II node, re-exported from [`mpas_sched`].
//!
//! The device, link, and platform models moved into the scheduling
//! subsystem (`mpas-sched`) so every registered policy prices work against
//! the same roofline; this module keeps the historical `mpas_hybrid` paths
//! (`crate::device::DeviceSpec`, …) compiling.

pub use mpas_sched::platform::{DeviceSpec, Platform, TransferLink};
