//! Measurement-driven cost calibration.
//!
//! The schedulers in `mpas-sched` price every Table-I pattern instance with
//! the roofline model of [`crate::device`]. That model is deliberately
//! simple — `max(flops/peak, bytes/bw) + launch` — and systematic per-kernel
//! deviations (gather-heavy stencils, short trip counts, transcendental-free
//! streams) show up as a per-pattern multiplicative error. This module
//! measures that error on the machine the code actually runs on: it times
//! the *real* host executors from [`mpas_swe::kernels::ops`] — the same
//! kernel bodies [`crate::parallel::ParallelModel`] drives — one Table-I
//! instance at a time on realistic test-case-5 state, and fits
//!
//! ```text
//! coeff(pattern) = measured_serial_time / roofline_prediction
//! ```
//!
//! into a [`CalibratedCost`], the [`mpas_sched::CostModel`] that rescales
//! the roofline per pattern. Feed it to
//! [`mpas_sched::TaskDag::from_dataflow_with`] and every registered policy
//! schedules against measured, not modeled, costs.
//!
//! Three instances share an executor invocation and split its time evenly:
//! `D1`/`D2` are both produced by one [`ops::d2fdx2`] call, and `A4`'s
//! three Cartesian outputs come from one [`ops::reconstruct_xyz`] call.

use crate::parallel::ParallelModel;
use mpas_patterns::dataflow::{table_i, DataflowGraph, MeshCounts, RkPhase};
use mpas_sched::{CalibratedCost, DagOptions, DeviceSpec, Platform, SchedulerPolicy, TaskDag};
use mpas_swe::config::ModelConfig;
use mpas_swe::kernels::ops;
use mpas_swe::rk4::{RK_SUBSTEP, RK_WEIGHTS};
use mpas_swe::testcases::TestCase;
use mpas_telemetry::MetricsSnapshot;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// One pattern's measured-vs-predicted execution time.
#[derive(Debug, Clone)]
pub struct PatternCalibration {
    /// Table-I label (`"A1"`, …, `"X6"`).
    pub name: String,
    /// Best-of-`reps` wall-clock time of the serial host executor, seconds.
    pub measured: f64,
    /// Single-core roofline prediction for the same work, seconds.
    pub predicted: f64,
}

impl PatternCalibration {
    /// Fitted coefficient: `measured / predicted`.
    pub fn coeff(&self) -> f64 {
        self.measured / self.predicted
    }
}

/// Result of one calibration run: every Table-I pattern timed on a mesh.
#[derive(Debug, Clone)]
pub struct CalibrationReport {
    /// Cells in the calibration mesh.
    pub n_cells: usize,
    /// Timing repetitions per pattern (best-of is kept).
    pub reps: usize,
    /// Per-pattern measurements, in Table-I order.
    pub entries: Vec<PatternCalibration>,
}

impl CalibrationReport {
    /// The fitted coefficient for `name`, if that pattern was measured.
    pub fn coeff(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.coeff())
    }

    /// Largest multiplicative model error across patterns:
    /// `max(coeff, 1/coeff)`, so `1.0` means the roofline was exact.
    pub fn worst_ratio(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.coeff().max(1.0 / e.coeff()))
            .fold(1.0, f64::max)
    }

    /// Build the [`CostModel`](mpas_sched::CostModel) that rescales the
    /// roofline by the fitted per-pattern coefficients.
    pub fn cost_model(&self) -> CalibratedCost {
        let coeffs: HashMap<String, f64> = self
            .entries
            .iter()
            .map(|e| (e.name.clone(), e.coeff()))
            .collect();
        CalibratedCost::new(coeffs)
    }

    /// Modeled wall-clock seconds for one full RK4 step of a mesh with
    /// `mc` counts on `platform` under `policy`, priced with this report's
    /// calibrated costs: three intermediate-substep schedules plus one
    /// final-substep schedule, makespans summed. This is what the trace
    /// analyzer's measured critical path is compared against.
    pub fn modeled_time_per_step(
        &self,
        mc: &MeshCounts,
        platform: &Platform,
        policy: &dyn SchedulerPolicy,
    ) -> f64 {
        let cost = self.cost_model();
        let substep = |phase: RkPhase| {
            let graph = DataflowGraph::for_substep(phase);
            let dag =
                TaskDag::from_dataflow_with(&graph, mc, platform, &cost, DagOptions::default());
            policy.schedule(&dag, platform).makespan
        };
        3.0 * substep(RkPhase::Intermediate) + substep(RkPhase::Final)
    }
}

/// Best-of-`reps` wall-clock time of `f`, after one warm-up call.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f(); // warm caches, fault pages
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Calibrate on a generated icosahedral mesh of the given subdivision
/// `level` (6 is the paper's 40 962-cell mesh) with best-of-`reps` timing.
pub fn calibrate_host(level: u32, reps: usize) -> CalibrationReport {
    let mesh = Arc::new(mpas_mesh::generate(level, 0));
    calibrate_on(mesh, reps)
}

/// Calibrate every Table-I pattern on `mesh`.
///
/// State comes from a [`ParallelModel`] on Williamson test case 5 (the
/// paper's benchmark case), advanced one step so all diagnostic fields are
/// realistic; each executor is then timed single-threaded over its full
/// output range, in data-flow order so every input is valid when read.
pub fn calibrate_on(mesh: Arc<mpas_mesh::Mesh>, reps: usize) -> CalibrationReport {
    // High-order thickness so the H2 executor runs the three-input branch
    // the Table-I instance describes (D1/D2 feed it).
    let config = ModelConfig {
        high_order_h_edge: true,
        ..ModelConfig::default()
    };
    let mut m = ParallelModel::new(mesh.clone(), config, TestCase::Case5, None, 1);
    m.step(); // populate diagnostics and reconstruction with live values

    let nc = mesh.n_cells();
    let ne = mesh.n_edges();
    let nv = mesh.n_vertices();
    let dt = m.dt;

    // Scratch fields the tendency/update patterns write into.
    let mut tend_h = vec![0.0; nc];
    let mut tend_u = vec![0.0; ne];
    let mut provis_h = vec![0.0; nc];
    let mut provis_u = vec![0.0; ne];
    let mut acc_h = m.state.h.clone();
    let mut acc_u = m.state.u.clone();

    // `(pattern name, measured seconds)`, accumulated in data-flow order.
    let mut measured: Vec<(&'static str, f64)> = Vec::new();

    // -- diagnostics ------------------------------------------------------
    let t = time_best(reps, || {
        ops::d2fdx2(
            &mesh,
            &m.state.h,
            &mut m.diag.d2fdx2_cell1,
            &mut m.diag.d2fdx2_cell2,
            0..ne,
        )
    });
    // One call produces both D1 and D2; split its cost evenly.
    measured.push(("D1", 0.5 * t));
    measured.push(("D2", 0.5 * t));

    let t = time_best(reps, || {
        ops::h_edge(
            &mesh,
            &m.config,
            &m.state.h,
            &m.diag.d2fdx2_cell1,
            &m.diag.d2fdx2_cell2,
            &mut m.diag.h_edge,
            0..ne,
        )
    });
    measured.push(("H2", t));

    let t = time_best(reps, || {
        ops::vorticity(&mesh, &m.state.u, &mut m.diag.vorticity, 0..nv)
    });
    measured.push(("C2", t));

    let t = time_best(reps, || ops::ke(&mesh, &m.state.u, &mut m.diag.ke, 0..nc));
    measured.push(("A2", t));

    let t = time_best(reps, || {
        ops::divergence(&mesh, &m.state.u, &mut m.diag.divergence, 0..nc)
    });
    measured.push(("B2", t));

    let t = time_best(reps, || {
        ops::tangential_velocity(&mesh, &m.state.u, &mut m.diag.v, 0..ne)
    });
    measured.push(("H1", t));

    let t = time_best(reps, || {
        ops::vorticity_cell(&mesh, &m.diag.vorticity, &mut m.diag.vorticity_cell, 0..nc)
    });
    measured.push(("A3", t));

    let t = time_best(reps, || {
        ops::pv_vertex(
            &mesh,
            &m.state.h,
            &m.diag.vorticity,
            &m.f_vertex,
            &mut m.diag.pv_vertex,
            0..nv,
        )
    });
    measured.push(("E", t));

    let t = time_best(reps, || {
        ops::pv_cell(&mesh, &m.diag.pv_vertex, &mut m.diag.pv_cell, 0..nc)
    });
    measured.push(("F", t));

    let t = time_best(reps, || {
        ops::pv_edge(
            &mesh,
            m.config.apvm_factor,
            dt,
            &m.diag.pv_vertex,
            &m.diag.pv_cell,
            &m.state.u,
            &m.diag.v,
            &mut m.diag.pv_edge,
            0..ne,
        )
    });
    measured.push(("G", t));

    // -- tendencies -------------------------------------------------------
    let t = time_best(reps, || {
        ops::tend_h(&mesh, &m.state.u, &m.diag.h_edge, &mut tend_h, 0..nc)
    });
    measured.push(("A1", t));

    let t = time_best(reps, || {
        ops::tend_u(
            &mesh,
            m.config.gravity,
            &m.diag.pv_edge,
            &m.state.u,
            &m.diag.h_edge,
            &m.diag.ke,
            &m.state.h,
            &m.b,
            &mut tend_u,
            0..ne,
        )
    });
    measured.push(("B1", t));

    // C1 is read-modify-write on tend_u; a representative viscosity keeps
    // the arithmetic identical whether or not the run enables del2.
    let nu = if m.config.del2_viscosity > 0.0 {
        m.config.del2_viscosity
    } else {
        1.0e4
    };
    let t = time_best(reps, || {
        ops::tend_u_del2(
            &mesh,
            nu,
            &m.diag.divergence,
            &m.diag.vorticity,
            &mut tend_u,
            0..ne,
        )
    });
    measured.push(("C1", t));

    let t = time_best(reps, || ops::enforce_boundary(&mesh, &mut tend_u, 0..ne));
    measured.push(("X1", t));

    // -- state updates ----------------------------------------------------
    let t = time_best(reps, || {
        ops::axpy(
            &m.state.h,
            &tend_h,
            RK_SUBSTEP[0] * dt,
            &mut provis_h,
            0..nc,
        )
    });
    measured.push(("X2", t));

    let t = time_best(reps, || {
        ops::axpy(
            &m.state.u,
            &tend_u,
            RK_SUBSTEP[0] * dt,
            &mut provis_u,
            0..ne,
        )
    });
    measured.push(("X3", t));

    let t = time_best(reps, || {
        ops::accumulate(&tend_h, RK_WEIGHTS[0] * dt, &mut acc_h, 0..nc)
    });
    measured.push(("X4", t));

    let t = time_best(reps, || {
        ops::accumulate(&tend_u, RK_WEIGHTS[0] * dt, &mut acc_u, 0..ne)
    });
    measured.push(("X5", t));

    // -- reconstruction ---------------------------------------------------
    let t = time_best(reps, || {
        ops::reconstruct_xyz(
            &mesh,
            &m.coeffs,
            &m.state.u,
            &mut m.recon.ux,
            &mut m.recon.uy,
            &mut m.recon.uz,
            0..nc,
        )
    });
    measured.push(("A4", t));

    let t = time_best(reps, || {
        ops::zonal_meridional(
            &mesh,
            &m.recon.ux,
            &m.recon.uy,
            &m.recon.uz,
            &mut m.recon.zonal,
            &mut m.recon.meridional,
            0..nc,
        )
    });
    measured.push(("X6", t));

    // -- fit --------------------------------------------------------------
    let mc = MeshCounts {
        n_cells: nc as f64,
        n_edges: ne as f64,
        n_vertices: nv as f64,
    };
    let cpu = DeviceSpec::cpu_single_core();
    let instances = table_i();
    let entries = measured
        .into_iter()
        .map(|(name, secs)| {
            let inst = instances
                .iter()
                .find(|i| i.name == name)
                .unwrap_or_else(|| panic!("{name} not in Table I"));
            PatternCalibration {
                name: name.to_string(),
                measured: secs,
                predicted: cpu.node_time(inst.work(&mc)),
            }
        })
        .collect();
    CalibrationReport {
        n_cells: nc,
        reps,
        entries,
    }
}

/// Fit a calibration from the `hybrid.kernel.<label>.seconds` histograms a
/// telemetry [`Recorder`](mpas_telemetry::Recorder) collected while a
/// [`ParallelModel`]/[`crate::parallel::HybridModel`] ran — the in-situ
/// alternative to [`calibrate_on`]'s dedicated timing loop.
///
/// The p50 of each histogram is the measured time (robust to warm-up
/// outliers the best-of-`reps` loop avoids by construction). The shared
/// `D1D2` timer covers one [`ops::d2fdx2`] call that produces both `D1` and
/// `D2`; its time is split evenly, mirroring [`calibrate_on`]. Patterns
/// with no recorded histogram (e.g. `C1` when `del2_viscosity == 0`) are
/// simply absent from the report; [`CalibratedCost`] falls back to the
/// plain roofline for them.
pub fn calibration_from_metrics(snapshot: &MetricsSnapshot, mc: &MeshCounts) -> CalibrationReport {
    let cpu = DeviceSpec::cpu_single_core();
    let instances = table_i();
    let mut entries = Vec::new();
    for inst in &instances {
        let measured = match inst.name {
            "D1" | "D2" => snapshot
                .histogram("hybrid.kernel.D1D2.seconds")
                .map(|h| 0.5 * h.p50),
            name => snapshot
                .histogram(&format!("hybrid.kernel.{name}.seconds"))
                .map(|h| h.p50),
        };
        if let Some(measured) = measured {
            entries.push(PatternCalibration {
                name: inst.name.to_string(),
                measured,
                predicted: cpu.node_time(inst.work(mc)),
            });
        }
    }
    CalibrationReport {
        n_cells: mc.n_cells as usize,
        reps: 1,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpas_patterns::dataflow::{DataflowGraph, RkPhase};
    use mpas_sched::{DagOptions, Platform, SchedulerPolicy, TaskDag};

    #[test]
    fn calibration_covers_every_table_i_pattern() {
        // Small mesh: checks plumbing, not timing quality.
        let report = calibrate_host(3, 2);
        let names: Vec<&str> = report.entries.iter().map(|e| e.name.as_str()).collect();
        for inst in table_i() {
            assert!(names.contains(&inst.name), "{} not calibrated", inst.name);
        }
        assert_eq!(report.entries.len(), table_i().len());
        for e in &report.entries {
            assert!(
                e.measured > 0.0 && e.measured.is_finite(),
                "{}: bad measurement {}",
                e.name,
                e.measured
            );
            assert!(e.predicted > 0.0 && e.predicted.is_finite());
            assert!(e.coeff() > 0.0 && e.coeff().is_finite());
        }
        assert!(report.worst_ratio() >= 1.0);
    }

    #[test]
    fn calibrated_cost_drives_the_schedulers() {
        // A calibrated dag must be schedulable by any registered policy
        // and reproduce measured * coeff = measured by construction.
        let report = calibrate_host(3, 2);
        let cost = report.cost_model();
        let mc = MeshCounts::icosahedral(40_962);
        let graph = DataflowGraph::for_substep(RkPhase::Intermediate);
        let platform = Platform::paper_node();
        let dag = TaskDag::from_dataflow_with(&graph, &mc, &platform, &cost, DagOptions::default());
        for spec in mpas_sched::registered_names() {
            let policy = mpas_sched::resolve(spec).unwrap();
            let s = policy.schedule(&dag, &platform);
            assert!(s.makespan > 0.0 && s.makespan.is_finite(), "{spec}");
        }
    }

    #[test]
    fn metrics_driven_calibration_covers_instrumented_patterns() {
        // Run the instrumented executor under a live recorder, then fit a
        // calibration from the collected histograms.
        let rec = mpas_telemetry::Recorder::new();
        let mesh = Arc::new(mpas_mesh::generate(3, 0));
        let config = ModelConfig {
            high_order_h_edge: true,
            ..ModelConfig::default()
        };
        let mut m = ParallelModel::new(mesh.clone(), config, TestCase::Case5, None, 1)
            .with_recorder(rec.clone());
        m.step();
        let mc = MeshCounts {
            n_cells: mesh.n_cells() as f64,
            n_edges: mesh.n_edges() as f64,
            n_vertices: mesh.n_vertices() as f64,
        };
        let report = calibration_from_metrics(&rec.snapshot(), &mc);
        // Everything the executor timed must be fitted: the step runs
        // D1/D2+H2 (high-order), the full diagnostics chain, tendencies
        // (del2 off by default, so no C1), updates, and reconstruction.
        let names: Vec<&str> = report.entries.iter().map(|e| e.name.as_str()).collect();
        for expected in [
            "D1", "D2", "H2", "C2", "A2", "B2", "H1", "A3", "E", "F", "G", "A1", "B1", "X1", "X2",
            "X3", "X4", "X5", "A4", "X6",
        ] {
            assert!(names.contains(&expected), "{expected} not fitted");
        }
        for e in &report.entries {
            assert!(e.measured > 0.0 && e.measured.is_finite(), "{}", e.name);
            assert!(e.coeff() > 0.0 && e.coeff().is_finite(), "{}", e.name);
        }
        // D1 and D2 split one timer evenly.
        let d1 = report.entries.iter().find(|e| e.name == "D1").unwrap();
        let d2 = report.entries.iter().find(|e| e.name == "D2").unwrap();
        assert_eq!(d1.measured, d2.measured);
        // And the report drives the scheduler cost model like any other.
        let cost = report.cost_model();
        assert!(cost.coeffs["B1"] > 0.0);
    }

    #[test]
    fn modeled_time_per_step_sums_four_substeps() {
        let report = calibrate_host(3, 1);
        let mc = MeshCounts::icosahedral(40_962);
        let platform = Platform::paper_node();
        let policy = mpas_sched::resolve("heft").unwrap();
        let step = report.modeled_time_per_step(&mc, &platform, policy.as_ref());
        assert!(step > 0.0 && step.is_finite());
        // One intermediate substep alone must be cheaper than the step.
        let cost = report.cost_model();
        let graph = DataflowGraph::for_substep(RkPhase::Intermediate);
        let dag = TaskDag::from_dataflow_with(&graph, &mc, &platform, &cost, DagOptions::default());
        let one = policy.schedule(&dag, &platform).makespan;
        assert!(step > 3.0 * one - 1e-12, "three intermediates plus a final");
    }

    #[test]
    #[ignore = "timing-sensitive: run locally with `cargo test -- --ignored`"]
    fn round_trip_within_2x_on_level6_mesh() {
        // Acceptance check: fit coefficients on the paper's 40 962-cell
        // mesh, re-measure independently, and require the calibrated
        // prediction to land within 2x of the fresh measurement for every
        // Table-I pattern.
        let fitted = calibrate_host(6, 5);
        let cost = fitted.cost_model();
        let fresh = calibrate_host(6, 5);
        for e in &fresh.entries {
            let calibrated = cost.coeffs[&e.name] * e.predicted;
            let ratio = (calibrated / e.measured).max(e.measured / calibrated);
            assert!(
                ratio < 2.0,
                "{}: calibrated {:.3e}s vs measured {:.3e}s (x{:.2})",
                e.name,
                calibrated,
                e.measured,
                ratio
            );
        }
    }
}
