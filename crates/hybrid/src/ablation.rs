//! Ablation studies of the pattern-driven design.
//!
//! The paper claims (§II) that the approach is "flexible for any
//! heterogeneous architecture with arbitrary host-to-device ratios" and
//! attributes its win over kernel-level scheduling to fine-grained load
//! balance. These sweeps make both claims testable:
//!
//! * [`sweep_split_threshold`] — how the adjustability threshold (which
//!   patterns may split across devices) changes the makespan;
//! * [`sweep_device_ratio`] — pattern-driven vs. kernel-level while the
//!   accelerator:host throughput ratio varies over 1/4×..8×;
//! * [`sweep_link_bandwidth`] — sensitivity to the PCIe transfer rate
//!   (the offload tax);
//! * [`sweep_fused_local_patterns`] — the "Others" loop-fusion effect:
//!   merging point-local patterns removes launch overheads.

use crate::device::{Platform, TransferLink};
use crate::sched::{
    pattern_driven_schedule_opts, pattern_driven_schedule_with, schedule_substep, Policy,
    SchedOptions,
};
use mpas_patterns::dataflow::{DataflowGraph, MeshCounts, RkPhase};
use mpas_patterns::pattern::PatternClass;

/// One sweep sample.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// The swept parameter's value.
    pub x: f64,
    /// Substep makespan under the pattern-driven policy, seconds.
    pub pattern_makespan: f64,
    /// Substep makespan under the kernel-level policy, seconds.
    pub kernel_makespan: f64,
}

fn graph() -> DataflowGraph {
    DataflowGraph::for_substep(RkPhase::Intermediate)
}

/// Sweep the split ("adjustable") threshold from "split everything" to
/// "split nothing". At 1.0 no node splits and the pattern-driven policy
/// degenerates toward per-node EFT without balancing.
pub fn sweep_split_threshold(
    mc: &MeshCounts,
    platform: &Platform,
    thresholds: &[f64],
) -> Vec<SweepPoint> {
    let g = graph();
    let kernel = schedule_substep(&g, mc, platform, Policy::KernelLevel).makespan;
    thresholds
        .iter()
        .map(|&t| SweepPoint {
            x: t,
            pattern_makespan: pattern_driven_schedule_with(&g, mc, platform, t).makespan,
            kernel_makespan: kernel,
        })
        .collect()
}

/// Sweep the accelerator:host effective-bandwidth ratio while keeping the
/// combined node throughput fixed — the "arbitrary host-to-device ratios"
/// claim. Both flops and bandwidth scale together.
pub fn sweep_device_ratio(mc: &MeshCounts, base: &Platform, ratios: &[f64]) -> Vec<SweepPoint> {
    let g = graph();
    let total_bw = base.cpu.mem_bw + base.acc.mem_bw;
    let total_fl = base.cpu.flops + base.acc.flops;
    ratios
        .iter()
        .map(|&r| {
            let mut p = *base;
            // acc = r * cpu, cpu + acc = total.
            p.cpu.mem_bw = total_bw / (1.0 + r);
            p.acc.mem_bw = total_bw * r / (1.0 + r);
            p.cpu.flops = total_fl / (1.0 + r);
            p.acc.flops = total_fl * r / (1.0 + r);
            SweepPoint {
                x: r,
                pattern_makespan: schedule_substep(&g, mc, &p, Policy::PatternDriven).makespan,
                kernel_makespan: schedule_substep(&g, mc, &p, Policy::KernelLevel).makespan,
            }
        })
        .collect()
}

/// Sweep the host↔device link bandwidth (bytes/s).
pub fn sweep_link_bandwidth(
    mc: &MeshCounts,
    base: &Platform,
    bandwidths: &[f64],
) -> Vec<SweepPoint> {
    let g = graph();
    bandwidths
        .iter()
        .map(|&bw| {
            let mut p = *base;
            p.link = TransferLink {
                latency: p.link.latency,
                bandwidth: bw,
            };
            SweepPoint {
                x: bw,
                pattern_makespan: schedule_substep(&g, mc, &p, Policy::PatternDriven).makespan,
                kernel_makespan: schedule_substep(&g, mc, &p, Policy::KernelLevel).makespan,
            }
        })
        .collect()
}

/// Compare pattern-driven makespans with and without transfer overlap
/// (the paper's "overlapped data moving"): `(overlapped, blocking)`.
pub fn overlap_ablation(mc: &MeshCounts, platform: &Platform) -> (f64, f64) {
    let g = graph();
    let on = pattern_driven_schedule_opts(
        &g,
        mc,
        platform,
        SchedOptions {
            overlap_transfers: true,
            ..Default::default()
        },
    );
    let off = pattern_driven_schedule_opts(
        &g,
        mc,
        platform,
        SchedOptions {
            overlap_transfers: false,
            ..Default::default()
        },
    );
    (on.makespan, off.makespan)
}

/// Model the "Others" loop-fusion optimization on a single device: adjacent
/// point-local patterns of the same kernel share one parallel region, so
/// each fused-away boundary saves exactly one launch overhead while the
/// data-movement work is unchanged (the loops fuse body-to-body).
///
/// Returns `(unfused_makespan, fused_makespan, regions_saved)`.
pub fn fused_local_single_device(
    mc: &MeshCounts,
    dev: &crate::device::DeviceSpec,
) -> (f64, f64, usize) {
    let g = graph();
    let mut unfused = 0.0;
    let mut fused = 0.0;
    let mut saved = 0usize;
    let mut prev: Option<(mpas_patterns::dataflow::Kernel, PatternClass)> = None;
    for n in &g.nodes {
        let dt = dev.node_time(n.work(mc));
        unfused += dt;
        let fusable = matches!(prev, Some((k, PatternClass::Local))
            if k == n.kernel && n.class == PatternClass::Local);
        if fusable {
            fused += dt - dev.launch_overhead;
            saved += 1;
        } else {
            fused += dt;
        }
        prev = Some((n.kernel, n.class));
    }
    (unfused, fused, saved)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MeshCounts {
        MeshCounts::icosahedral(655_362)
    }

    #[test]
    fn default_threshold_is_near_optimal() {
        let p = Platform::paper_node();
        let pts = sweep_split_threshold(&mc(), &p, &[0.01, 0.02, 0.05, 0.08, 0.15, 0.3, 1.1]);
        let best = pts
            .iter()
            .map(|s| s.pattern_makespan)
            .fold(f64::INFINITY, f64::min);
        let at_default = pts.iter().find(|s| s.x == 0.08).unwrap().pattern_makespan;
        assert!(at_default / best < 1.15, "default threshold far from best");
        // Disabling splitting entirely (threshold > 1) must be worse.
        let none = pts.last().unwrap().pattern_makespan;
        assert!(none > best * 1.1, "splitting gives no benefit?");
    }

    #[test]
    fn pattern_driven_wins_across_device_ratios() {
        // The flexibility claim: for any host:device ratio from 1:4 to 8:1,
        // pattern-driven ≤ kernel-level.
        let p = Platform::paper_node();
        let pts = sweep_device_ratio(&mc(), &p, &[0.25, 0.5, 1.0, 1.4, 2.0, 4.0, 8.0]);
        for s in &pts {
            assert!(
                s.pattern_makespan <= s.kernel_makespan * 1.001,
                "ratio {}: pattern {} > kernel {}",
                s.x,
                s.pattern_makespan,
                s.kernel_makespan
            );
        }
        // And the advantage is largest when devices are comparable (load
        // balance matters most there).
        let near_equal = pts.iter().find(|s| s.x == 1.0).unwrap();
        let lopsided = pts.iter().find(|s| s.x == 8.0).unwrap();
        let adv = |s: &SweepPoint| s.kernel_makespan / s.pattern_makespan;
        assert!(adv(near_equal) > adv(lopsided));
    }

    #[test]
    fn slow_links_erode_the_pattern_advantage() {
        let p = Platform::paper_node();
        let pts = sweep_link_bandwidth(&mc(), &p, &[0.5e9, 2e9, 6e9, 24e9]);
        // A 48x faster link must help overall.
        assert!(pts.last().unwrap().pattern_makespan <= pts.first().unwrap().pattern_makespan);
        // At PCIe-class bandwidth and above, pattern-driven wins; below
        // ~1 GB/s its extra intermediate traffic erodes the advantage to
        // nothing (an offload-tax crossover the paper's PCIe never hits).
        for s in &pts {
            if s.x >= 2e9 {
                assert!(
                    s.pattern_makespan <= s.kernel_makespan * 1.01,
                    "bw {}: {} vs {}",
                    s.x,
                    s.pattern_makespan,
                    s.kernel_makespan
                );
            } else {
                assert!(s.pattern_makespan <= s.kernel_makespan * 1.10);
            }
        }
    }

    #[test]
    fn overlap_helps_at_scale_on_the_paper_link() {
        // On the paper's PCIe link the overlapped accounting wins at the
        // production mesh sizes; at the smallest mesh (and on much slower
        // links) the greedy scheduler over-commits to cross-device
        // placements because transfers look free — both behaviors are
        // bounded here and recorded in EXPERIMENTS.md.
        let p = Platform::paper_node();
        for cells in [655_362usize, 2_621_442] {
            let (on, off) = overlap_ablation(&MeshCounts::icosahedral(cells), &p);
            assert!(
                on <= off * 1.0001,
                "{cells}: overlap {on} vs blocking {off}"
            );
        }
        let (on, off) = overlap_ablation(&MeshCounts::icosahedral(40_962), &p);
        assert!(on <= off * 1.05, "small-mesh overshoot too large");
    }

    #[test]
    fn fusing_local_patterns_saves_launch_overhead() {
        let p = Platform::paper_node();
        // Launch overheads only matter at small mesh sizes.
        let small = MeshCounts::icosahedral(40_962);
        // The saving is exactly one launch overhead per fused-away region
        // boundary; the intermediate graph has X2|X3 and X4|X5 to fuse.
        let (unfused, fused, saved) = fused_local_single_device(&small, &p.acc);
        assert_eq!(saved, 2, "expected X2+X3 and X4+X5 fusions");
        let gain = unfused - fused;
        let expect = saved as f64 * p.acc.launch_overhead;
        assert!((gain - expect).abs() < 1e-12, "gain {gain} vs {expect}");
        assert!(fused < unfused);
    }
}
