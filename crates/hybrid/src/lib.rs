#![warn(missing_docs)]
//! The hybrid multi-/many-core execution engine — the paper's contribution.
//!
//! Three layers, mirroring the paper's method:
//!
//! * [`device`] — descriptors of the Table-II node (Xeon E5-2680 v2 host,
//!   Xeon Phi 5110P accelerator, PCIe link), with roofline execution-time
//!   models, re-exported from the `mpas-sched` subsystem. The Phi is
//!   simulated (DESIGN.md §1 documents the substitution); the scheduling
//!   code is real.
//! * [`sched`] + [`sim`] — makespan scheduling of the data-flow diagram
//!   under the paper's three policies (serial reference, kernel-level
//!   hybrid of Fig. 2, pattern-driven hybrid of Fig. 4 (b) with adjustable
//!   splits) and any registered `mpas_sched::SchedulerPolicy` (HEFT, CPOP,
//!   lookahead, dynamic-list), plus the multi-process scaling model
//!   (Figs. 7–9).
//! * [`calibrate`] — measurement-driven cost calibration: times the real
//!   host executors per Table-I pattern and fits per-pattern coefficients
//!   back into the scheduling cost model; alternatively fits them from the
//!   `hybrid.kernel.*` histograms a telemetry
//!   [`Recorder`](mpas_telemetry::Recorder) collected during a real run
//!   ([`calibration_from_metrics`]).
//! * [`parallel`] — real, measured executors: a rayon "OpenMP" analog and
//!   a two-pool hybrid executor, both verified bit-for-bit against the
//!   serial kernels (the §V.A validation). Both accept a telemetry
//!   recorder and emit per-kernel timers keyed by Table-I label.
//! * [`ladder`] — the Fig. 6 single-device optimization ladder.

pub mod ablation;
pub mod calibrate;
pub mod device;
pub mod ladder;
pub mod parallel;
pub mod sched;
pub mod sim;
pub mod trace;

pub use calibrate::{calibrate_host, calibration_from_metrics, CalibrationReport};
pub use device::{DeviceSpec, Platform, TransferLink};
pub use ladder::{fig6_ladder, OptStage};
pub use parallel::{HybridModel, ParallelModel};
pub use sched::{schedule_substep, Placement, Policy, SchedOptions, Schedule, SchedulerPolicy};
pub use sim::{time_per_step, time_per_step_multirank};
pub use trace::{to_chrome_trace, to_combined_trace};
