//! The Fig. 6 optimization ladder on the many-core device.
//!
//! The paper applies successive optimizations to the single-Phi build and
//! reports the speedup over one unoptimized (scalar, scatter-form) Phi
//! core: naive OpenMP < 20×, regularity-aware refactoring > 60×, SIMD
//! ≈ +20 %, then streaming stores / prefetch / 2 MB pages / loop fusion
//! toward ≈ 100×.
//!
//! With no Phi available, each stage is modeled as an effective-bandwidth
//! level (the kernels are memory-bound): threading multiplies per-core
//! bandwidth until the aggregate cap; the scatter form throttles the
//! irregular-reduction patterns to an atomic-update bandwidth; SIMD /
//! streaming / others each multiply the gather bandwidth by the paper's
//! reported ratios. The measured companion — the relative cost of
//! scatter / gather / branch-free / fused loop forms on a real host core —
//! lives in the bench crate (`bench_reduction_forms`).

use crate::device::DeviceSpec;
use mpas_patterns::dataflow::{DataflowGraph, MeshCounts, RkPhase};

/// Cumulative optimization stages of Fig. 6 (each includes its
/// predecessors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptStage {
    /// Original single-core scalar code, scatter-form reductions.
    Baseline,
    /// Naive OpenMP over all loops; irregular reductions via atomics.
    OpenMp,
    /// Regularity-aware loop refactoring (Alg. 3) — full threading.
    Refactoring,
    /// Manual 512-bit SIMD with the branch-free label matrix (Alg. 4).
    Simd,
    /// Streaming (non-temporal) stores on 64-byte-aligned outputs.
    Streaming,
    /// Prefetching, 2 MB pages, loop fusion.
    Others,
}

impl OptStage {
    /// All stages in ladder order.
    pub const ALL: [OptStage; 6] = [
        OptStage::Baseline,
        OptStage::OpenMp,
        OptStage::Refactoring,
        OptStage::Simd,
        OptStage::Streaming,
        OptStage::Others,
    ];

    /// Display label matching the figure's x-axis.
    pub fn label(&self) -> &'static str {
        match self {
            OptStage::Baseline => "Baseline",
            OptStage::OpenMp => "OpenMP",
            OptStage::Refactoring => "Refactoring",
            OptStage::Simd => "SIMD",
            OptStage::Streaming => "Streaming",
            OptStage::Others => "Others",
        }
    }
}

/// Bandwidth multipliers (vs. the pre-SIMD threaded gather level) for the
/// vectorization-and-beyond stages, from the paper's reported ratios.
const SIMD_GAIN: f64 = 1.20;
const STREAMING_GAIN: f64 = 1.18;
const OTHERS_GAIN: f64 = 1.15;
/// Effective bandwidth of atomic scatter updates across 236 threads
/// (contended read-modify-writes bounce cache lines across the ring bus).
const ATOMIC_BW: f64 = 2.0e9;

/// Effective device bandwidth at a stage, for regular (`gather-safe`) and
/// irregular (scatter-form) patterns respectively.
/// Fully-optimized Phi-native aggregate bandwidth. Larger than the
/// offload-hybrid effective value in [`DeviceSpec::xeon_phi_5110p`]: the
/// Fig. 6 runs are device-resident with no host interaction.
const PHI_NATIVE_BW: f64 = 36.0e9;

fn stage_bandwidths(stage: OptStage) -> (f64, f64) {
    let phi = DeviceSpec::xeon_phi_5110p();
    let one = phi.mem_bw_one;
    // Walk backwards from the fully-optimized level to the pre-SIMD
    // threaded level.
    let full = PHI_NATIVE_BW;
    let threaded = full / (SIMD_GAIN * STREAMING_GAIN * OTHERS_GAIN);
    match stage {
        OptStage::Baseline => (one, one),
        OptStage::OpenMp => (threaded, ATOMIC_BW),
        OptStage::Refactoring => (threaded, threaded),
        OptStage::Simd => (threaded * SIMD_GAIN, threaded * SIMD_GAIN),
        OptStage::Streaming => {
            let b = threaded * SIMD_GAIN * STREAMING_GAIN;
            (b, b)
        }
        OptStage::Others => (full, full),
    }
}

/// Modeled time of one RK-4 step on the Phi at an optimization stage.
pub fn stage_time_per_step(stage: OptStage, mc: &MeshCounts) -> f64 {
    let inter = DataflowGraph::for_substep(RkPhase::Intermediate);
    let fin = DataflowGraph::for_substep(RkPhase::Final);
    let (bw_regular, bw_irregular) = stage_bandwidths(stage);
    let launch = if stage == OptStage::Baseline {
        0.0
    } else {
        DeviceSpec::xeon_phi_5110p().launch_overhead
    };
    let graph_time = |g: &DataflowGraph| -> f64 {
        g.nodes
            .iter()
            .map(|n| {
                let w = n.work(mc);
                let bw = if n.class.has_irregular_reduction() {
                    bw_irregular
                } else {
                    bw_regular
                };
                w.bytes / bw + launch
            })
            .sum()
    };
    3.0 * graph_time(&inter) + graph_time(&fin)
}

/// The full Fig. 6 series: (stage, speedup vs Baseline).
pub fn fig6_ladder(mc: &MeshCounts) -> Vec<(OptStage, f64)> {
    let base = stage_time_per_step(OptStage::Baseline, mc);
    OptStage::ALL
        .iter()
        .map(|&s| (s, base / stage_time_per_step(s, mc)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MeshCounts {
        // Fig. 6 uses the 30-km family; the paper's §V.B run.
        MeshCounts::icosahedral(163_842)
    }

    #[test]
    fn ladder_is_monotone() {
        let ladder = fig6_ladder(&mc());
        for pair in ladder.windows(2) {
            assert!(
                pair[1].1 >= pair[0].1,
                "{} -> {} regressed",
                pair[0].0.label(),
                pair[1].0.label()
            );
        }
    }

    #[test]
    fn ladder_matches_paper_bands() {
        let ladder = fig6_ladder(&mc());
        let get = |s: OptStage| ladder.iter().find(|&&(x, _)| x == s).unwrap().1;
        assert_eq!(get(OptStage::Baseline), 1.0);
        let openmp = get(OptStage::OpenMp);
        assert!(openmp < 20.0 && openmp > 5.0, "OpenMP stage {openmp}");
        let refac = get(OptStage::Refactoring);
        assert!(refac > 60.0, "Refactoring stage {refac}");
        let simd = get(OptStage::Simd);
        assert!(
            (simd / refac - 1.2).abs() < 0.05,
            "SIMD gain {} (expect ~20%)",
            simd / refac
        );
        let fin = get(OptStage::Others);
        assert!(
            (85.0..115.0).contains(&fin),
            "final stage {fin} (expect ~100x)"
        );
    }

    #[test]
    fn refactoring_is_the_big_jump() {
        // The paper's headline observation: refactoring, not SIMD, is the
        // decisive optimization on the many-core device.
        let ladder = fig6_ladder(&mc());
        let mut gains: Vec<(f64, &str)> = ladder
            .windows(2)
            .map(|p| (p[1].1 / p[0].1, p[1].0.label()))
            .collect();
        gains.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        assert!(
            gains[0].1 == "OpenMP" || gains[0].1 == "Refactoring",
            "largest gain was {}",
            gains[0].1
        );
    }
}
