//! Whole-step and multi-process performance simulation.
//!
//! Composes the substep schedules (3 intermediate + 1 final, per
//! Algorithm 1) into a time-per-step figure and layers the α+β halo
//! communication model on top for the strong/weak scaling experiments
//! (Figs. 8–9). The underlying schedules come from [`crate::sched`]; the
//! communication model from [`mpas_msg::CommCostModel`].
//!
//! Every entry point is generic over [`SchedulerPolicy`], so the classic
//! list schedulers (`mpas_sched::resolve("heft")`, …) drop into the same
//! scaling experiments as the paper's [`Policy`](crate::sched::Policy)
//! enum — pass either the enum by value or any `&dyn SchedulerPolicy`.

use crate::device::Platform;
use crate::sched::{schedule_substep, SchedulerPolicy};
use mpas_msg::CommCostModel;
use mpas_patterns::dataflow::{DataflowGraph, MeshCounts, RkPhase};

/// Simulated execution time of one RK-4 step on a single process.
pub fn time_per_step(mc: &MeshCounts, platform: &Platform, policy: impl SchedulerPolicy) -> f64 {
    let inter = DataflowGraph::for_substep(RkPhase::Intermediate);
    let fin = DataflowGraph::for_substep(RkPhase::Final);
    let t_inter = schedule_substep(&inter, mc, platform, &policy).makespan;
    let t_final = schedule_substep(&fin, mc, platform, &policy).makespan;
    3.0 * t_inter + t_final
}

/// Estimated halo bytes exchanged per substep by one rank: three layers of
/// ring cells (one `f64` cell field + one edge field, edges ≈ 3 per cell).
pub fn halo_bytes_per_substep(cells_per_rank: f64) -> f64 {
    if cells_per_rank <= 0.0 {
        return 0.0;
    }
    let ring = 3.46 * cells_per_rank.sqrt(); // hexagon-perimeter estimate
    let layers = 3.0;
    layers * ring * (1.0 + 3.0) * 8.0
}

/// Average number of halo-exchange neighbors of an RCB part on the sphere.
pub const HALO_NEIGHBORS: usize = 6;

/// Simulated time per RK-4 step of a multi-process run.
///
/// Each rank advances `n_cells / n_ranks` cells under `policy`, then pays a
/// halo exchange per substep. Policies that place work on the accelerator
/// ([`SchedulerPolicy::uses_accelerator`]) additionally ship the halo over
/// the PCIe link (device-resident state must be synchronized at the
/// exchange points — the red arrows in the paper's Figs. 2 and 4).
pub fn time_per_step_multirank(
    n_cells: usize,
    n_ranks: usize,
    platform: &Platform,
    policy: impl SchedulerPolicy,
    comm: &CommCostModel,
) -> f64 {
    let cells_per_rank = n_cells as f64 / n_ranks as f64;
    let mc = MeshCounts {
        n_cells: cells_per_rank,
        n_edges: 3.0 * cells_per_rank,
        n_vertices: 2.0 * cells_per_rank,
    };
    let compute = time_per_step(&mc, platform, &policy);
    if n_ranks == 1 {
        return compute;
    }
    let halo = halo_bytes_per_substep(cells_per_rank);
    let mut comm_time = 4.0 * comm.halo_time(halo as usize, HALO_NEIGHBORS);
    if policy.uses_accelerator() {
        // Device-side halo data crosses PCIe before it can hit the wire.
        comm_time += 4.0 * 2.0 * platform.link.time(halo);
    }
    compute + comm_time
}

/// Parallel efficiency of a strong-scaling point relative to one rank.
pub fn strong_efficiency(
    n_cells: usize,
    n_ranks: usize,
    platform: &Platform,
    policy: impl SchedulerPolicy,
    comm: &CommCostModel,
) -> f64 {
    let t1 = time_per_step_multirank(n_cells, 1, platform, &policy, comm);
    let tp = time_per_step_multirank(n_cells, n_ranks, platform, &policy, comm);
    t1 / (tp * n_ranks as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::Policy;

    #[test]
    fn paper_fig7_shape_serial_vs_hybrid() {
        // At 40 962 cells the serial step should land near the paper's
        // 0.271 s and the pattern-driven one near 0.045 s (band check —
        // absolute values come from the Table-II calibration).
        let p = Platform::paper_node();
        let mc = MeshCounts::icosahedral(40_962);
        let serial = time_per_step(&mc, &p, Policy::Serial);
        let pattern = time_per_step(&mc, &p, Policy::PatternDriven);
        assert!((0.1..0.6).contains(&serial), "serial {serial}");
        assert!(
            (3.5..11.0).contains(&(serial / pattern)),
            "speedup {}",
            serial / pattern
        );
    }

    #[test]
    fn weak_scaling_is_nearly_flat() {
        // Fig. 9: fixed 40 962 cells/process, P = 1 -> 64.
        let p = Platform::paper_node();
        let comm = CommCostModel::fdr_infiniband();
        let t1 = time_per_step_multirank(40_962, 1, &p, Policy::PatternDriven, &comm);
        let t64 = time_per_step_multirank(64 * 40_962, 64, &p, Policy::PatternDriven, &comm);
        assert!(t64 / t1 < 1.15, "weak scaling degraded: {} -> {}", t1, t64);
        // CPU version too.
        let c1 = time_per_step_multirank(40_962, 1, &p, Policy::Serial, &comm);
        let c64 = time_per_step_multirank(64 * 40_962, 64, &p, Policy::Serial, &comm);
        assert!(c64 / c1 < 1.05);
    }

    #[test]
    fn strong_scaling_large_mesh_is_near_ideal() {
        // Fig. 8 (b): 2 621 442 cells scales well to 64 hybrid processes.
        let p = Platform::paper_node();
        let comm = CommCostModel::fdr_infiniband();
        let eff = strong_efficiency(2_621_442, 64, &p, Policy::PatternDriven, &comm);
        assert!(eff > 0.7, "efficiency {eff}");
    }

    #[test]
    fn strong_scaling_small_mesh_saturates() {
        // Fig. 8 (a): on the 655 362-cell mesh the hybrid version loses
        // efficiency at 64 processes while the CPU version keeps more.
        let p = Platform::paper_node();
        let comm = CommCostModel::fdr_infiniband();
        let hybrid64 = strong_efficiency(655_362, 64, &p, Policy::PatternDriven, &comm);
        let hybrid8 = strong_efficiency(655_362, 8, &p, Policy::PatternDriven, &comm);
        let cpu64 = strong_efficiency(655_362, 64, &p, Policy::Serial, &comm);
        assert!(hybrid8 > hybrid64, "no saturation: {hybrid8} vs {hybrid64}");
        assert!(
            cpu64 > hybrid64,
            "CPU version should hold efficiency longer"
        );
    }

    #[test]
    fn hybrid_always_faster_in_absolute_time() {
        // Even where its *efficiency* saturates, the hybrid version stays
        // faster than the CPU version in wall-clock (Fig. 8 shows ~1
        // order of magnitude).
        let p = Platform::paper_node();
        let comm = CommCostModel::fdr_infiniband();
        for &n in &[655_362usize, 2_621_442] {
            for &ranks in &[1usize, 4, 16, 64] {
                let cpu = time_per_step_multirank(n, ranks, &p, Policy::Serial, &comm);
                let hyb = time_per_step_multirank(n, ranks, &p, Policy::PatternDriven, &comm);
                assert!(hyb < cpu, "n={n} P={ranks}: {hyb} !< {cpu}");
            }
        }
    }

    #[test]
    fn halo_bytes_scale_with_sqrt_of_local_size() {
        let a = halo_bytes_per_substep(10_000.0);
        let b = halo_bytes_per_substep(40_000.0);
        assert!((b / a - 2.0).abs() < 1e-9);
        assert_eq!(halo_bytes_per_substep(0.0), 0.0);
    }

    #[test]
    fn halo_bytes_are_zero_at_zero_and_monotone() {
        // Satellite regression: exact zero at 0 (and below), strictly
        // monotone growth in cells_per_rank.
        assert_eq!(halo_bytes_per_substep(0.0), 0.0);
        assert_eq!(halo_bytes_per_substep(-5.0), 0.0);
        let mut prev = 0.0;
        for cells in [1.0, 10.0, 100.0, 1e4, 1e6, 1e8] {
            let h = halo_bytes_per_substep(cells);
            assert!(h > prev, "halo bytes must grow with local size");
            prev = h;
        }
    }

    #[test]
    fn list_schedulers_drop_into_the_scaling_model() {
        // The generic signature accepts registry policies by reference.
        let p = Platform::paper_node();
        let comm = CommCostModel::fdr_infiniband();
        let mc = MeshCounts::icosahedral(40_962);
        let heft = mpas_sched::resolve("heft").unwrap();
        let t = time_per_step(&mc, &p, &heft);
        assert!(t > 0.0 && t.is_finite());
        let tm = time_per_step_multirank(655_362, 8, &p, &heft, &comm);
        assert!(tm > 0.0 && tm.is_finite());
        // HEFT schedules on both devices, so it pays the PCIe halo tax.
        assert!(heft.uses_accelerator());
    }
}
