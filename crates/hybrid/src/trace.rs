//! Chrome-trace (about://tracing / Perfetto) export of schedules.
//!
//! The paper argues about load balance with timeline pictures; this module
//! turns any [`Schedule`] into a `trace.json` you can load into a trace
//! viewer: one row per device, one slice per pattern execution, with split
//! patterns appearing on both rows.

use crate::sched::{Placement, Schedule};
use std::fmt::Write as _;

fn push_event(
    out: &mut String,
    first: &mut bool,
    name: &str,
    device: &str,
    start_us: f64,
    dur_us: f64,
) {
    if !*first {
        out.push(',');
    }
    *first = false;
    write!(
        out,
        "{{\"name\":\"{name}\",\"cat\":\"pattern\",\"ph\":\"X\",\"ts\":{start_us:.3},\"dur\":{dur_us:.3},\"pid\":1,\"tid\":\"{device}\"}}"
    )
    .unwrap();
}

/// Serialize a schedule as Chrome trace-event JSON.
pub fn to_chrome_trace(schedule: &Schedule) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for ns in &schedule.nodes {
        let start = ns.start * 1e6;
        let dur = ((ns.finish - ns.start) * 1e6).max(0.001);
        match ns.placement {
            Placement::Cpu => push_event(&mut out, &mut first, ns.name, "cpu", start, dur),
            Placement::Acc => push_event(&mut out, &mut first, ns.name, "mic", start, dur),
            Placement::Split(f) => {
                let label_cpu = format!("{} ({:.0}%)", ns.name, (1.0 - f) * 100.0);
                let label_acc = format!("{} ({:.0}%)", ns.name, f * 100.0);
                push_event(&mut out, &mut first, &label_cpu, "cpu", start, dur);
                push_event(&mut out, &mut first, &label_acc, "mic", start, dur);
            }
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{schedule_substep, Policy};
    use crate::Platform;
    use mpas_patterns::dataflow::{DataflowGraph, MeshCounts, RkPhase};

    fn sched(policy: Policy) -> Schedule {
        schedule_substep(
            &DataflowGraph::for_substep(RkPhase::Intermediate),
            &MeshCounts::icosahedral(655_362),
            &Platform::paper_node(),
            policy,
        )
    }

    #[test]
    fn trace_is_valid_json_with_all_nodes() {
        let s = sched(Policy::PatternDriven);
        let json = to_chrome_trace(&s);
        // Structure sanity without a JSON parser dependency: balanced
        // braces/brackets, one event per placement row.
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let n_events = json.matches("\"ph\":\"X\"").count();
        let expect: usize = s
            .nodes
            .iter()
            .map(|n| match n.placement {
                Placement::Split(_) => 2,
                _ => 1,
            })
            .sum();
        assert_eq!(n_events, expect);
        for n in &s.nodes {
            assert!(json.contains(n.name), "{} missing", n.name);
        }
    }

    #[test]
    fn serial_trace_uses_only_the_cpu_row() {
        let json = to_chrome_trace(&sched(Policy::Serial));
        assert!(json.contains("\"tid\":\"cpu\""));
        assert!(!json.contains("\"tid\":\"mic\""));
    }

    #[test]
    fn events_have_nonnegative_timestamps() {
        let json = to_chrome_trace(&sched(Policy::KernelLevel));
        assert!(!json.contains("\"ts\":-"));
    }
}
