//! Chrome-trace (about://tracing / Perfetto) export of schedules.
//!
//! The paper argues about load balance with timeline pictures; this module
//! turns any [`Schedule`] into a `trace.json` you can load into a trace
//! viewer: one row per device, one slice per pattern execution, with split
//! patterns appearing on both rows. Serialization rides on
//! [`mpas_telemetry::export::ChromeTrace`], so names are JSON-escaped and
//! a modeled schedule can share one file with measured telemetry spans
//! ([`to_combined_trace`]): track group (pid) 1 carries the model, group 2
//! the measurement.

use crate::sched::{Placement, Schedule};
use mpas_telemetry::export::ChromeTrace;
use mpas_telemetry::Recorder;

/// Track-group id of the modeled schedule in emitted traces.
pub const PID_MODELED: u32 = 1;
/// Track-group id of measured telemetry spans in emitted traces.
pub const PID_MEASURED: u32 = 2;

fn push_schedule(trace: &mut ChromeTrace, schedule: &Schedule) {
    trace.process_name(PID_MODELED, "modeled");
    for ns in &schedule.nodes {
        let start = ns.start * 1e6;
        let dur = ((ns.finish - ns.start) * 1e6).max(0.001);
        match ns.placement {
            Placement::Cpu => trace.complete(PID_MODELED, "cpu", ns.name, start, dur),
            Placement::Acc => trace.complete(PID_MODELED, "mic", ns.name, start, dur),
            Placement::Split(f) => {
                let label_cpu = format!("{} ({:.0}%)", ns.name, (1.0 - f) * 100.0);
                let label_acc = format!("{} ({:.0}%)", ns.name, f * 100.0);
                trace.complete(PID_MODELED, "cpu", &label_cpu, start, dur);
                trace.complete(PID_MODELED, "mic", &label_acc, start, dur);
            }
        }
    }
}

/// Serialize a schedule as Chrome trace-event JSON.
pub fn to_chrome_trace(schedule: &Schedule) -> String {
    let mut trace = ChromeTrace::new();
    push_schedule(&mut trace, schedule);
    trace.finish()
}

/// Serialize a modeled schedule and the measured spans/events of `rec`
/// into one Chrome trace: track group "modeled" (pid 1) holds the
/// scheduler's predicted timeline, track group "measured" (pid 2) the
/// recorded execution, so the two line up side by side in a trace viewer.
pub fn to_combined_trace(schedule: &Schedule, rec: &Recorder) -> String {
    let mut trace = ChromeTrace::new();
    push_schedule(&mut trace, schedule);
    trace.process_name(PID_MEASURED, "measured");
    trace.add_spans(PID_MEASURED, &rec.spans());
    trace.add_events(PID_MEASURED, "events", &rec.events());
    trace.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{schedule_substep, Policy};
    use crate::Platform;
    use mpas_patterns::dataflow::{DataflowGraph, MeshCounts, RkPhase};
    use mpas_telemetry::export::validate_json;

    fn sched(policy: Policy) -> Schedule {
        schedule_substep(
            &DataflowGraph::for_substep(RkPhase::Intermediate),
            &MeshCounts::icosahedral(655_362),
            &Platform::paper_node(),
            policy,
        )
    }

    #[test]
    fn trace_is_valid_json_with_all_nodes() {
        let s = sched(Policy::PatternDriven);
        let json = to_chrome_trace(&s);
        validate_json(&json).expect("trace must be valid JSON");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        let n_events = json.matches("\"ph\":\"X\"").count();
        let expect: usize = s
            .nodes
            .iter()
            .map(|n| match n.placement {
                Placement::Split(_) => 2,
                _ => 1,
            })
            .sum();
        assert_eq!(n_events, expect);
        for n in &s.nodes {
            assert!(json.contains(n.name), "{} missing", n.name);
        }
    }

    #[test]
    fn serial_trace_uses_only_the_cpu_row() {
        let json = to_chrome_trace(&sched(Policy::Serial));
        assert!(json.contains("\"tid\":\"cpu\""));
        assert!(!json.contains("\"tid\":\"mic\""));
    }

    #[test]
    fn events_have_nonnegative_timestamps() {
        let json = to_chrome_trace(&sched(Policy::KernelLevel));
        assert!(!json.contains("\"ts\":-"));
    }

    #[test]
    fn hostile_node_names_are_escaped() {
        // A schedule whose node names contain JSON-hostile characters must
        // still serialize to parseable JSON (regression test: names used to
        // be written into the event stream without escaping).
        let s = Schedule {
            makespan: 1.0,
            nodes: vec![crate::sched::NodeSchedule {
                name: "bad\"name\\with{json}\n\tchars",
                placement: Placement::Split(0.5),
                start: 0.0,
                finish: 1.0,
            }],
            cpu_busy: 1.0,
            acc_busy: 0.0,
        };
        let json = to_chrome_trace(&s);
        validate_json(&json).expect("escaped trace must be valid JSON");
        assert!(json.contains("bad\\\"name\\\\with{json}\\n\\tchars"));
    }

    #[test]
    fn combined_trace_has_both_track_groups() {
        let s = sched(Policy::PatternDriven);
        let rec = Recorder::new();
        {
            let _step = rec.span("measured", "step");
            let _k = rec.span_timed("measured", "B1", "hybrid.kernel.B1.seconds");
        }
        rec.event("sched.decision", &[("task", "B1".to_string())]);
        let json = to_combined_trace(&s, &rec);
        validate_json(&json).expect("combined trace must be valid JSON");
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"pid\":2"));
        assert!(json.contains("\"name\":\"modeled\""));
        assert!(json.contains("\"name\":\"measured\""));
        assert!(json.contains("\"ph\":\"i\""));
    }
}
