//! Makespan scheduling of the data-flow diagram onto the simulated node.
//!
//! Since the `mpas-sched` subsystem landed, the actual scheduling
//! algorithms live there: the paper's policies in [`mpas_sched::paper`],
//! the classic list schedulers (HEFT, CPOP, lookahead, dynamic-list) in
//! [`mpas_sched::list`], all operating on a [`TaskDag`] extracted from the
//! data-flow diagram. This module is the compatibility layer: the closed
//! [`Policy`] enum (which now also implements [`SchedulerPolicy`]), the
//! [`schedule_substep`] entry point, and the ablation helpers keep their
//! historical signatures.
//!
//! Cross-device data dependencies pay for a transfer on the (serialized)
//! link; variables made on one device become resident on both after the
//! transfer, modeling the paper's keep-data-resident strategy (§IV.A).

use crate::device::Platform;
use mpas_patterns::dataflow::{DataflowGraph, MeshCounts};
use mpas_sched::{DagOptions, RooflineCost, TaskDag};

pub use mpas_sched::schedule::{NodeSchedule, Placement, Schedule};
pub use mpas_sched::{SchedulerPolicy, DEFAULT_SPLIT_THRESHOLD};

/// The scheduling policy (the paper's closed set).
///
/// This enum predates the open [`SchedulerPolicy`] registry and is kept as
/// a compatibility shim: every variant delegates to the equivalent
/// `mpas-sched` policy, and the enum itself implements [`SchedulerPolicy`]
/// so it can be passed wherever a policy is expected. New code should
/// prefer [`mpas_sched::resolve`] with a policy name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// The original single-core CPU code.
    Serial,
    /// All kernels on the full multi-core host.
    CpuOnly,
    /// Offload everything to the accelerator (§II.C's first option).
    AccOnly,
    /// Whole-kernel hybrid scheduling (Fig. 2).
    KernelLevel,
    /// Pattern-instance hybrid scheduling with splits (Fig. 4 (b)).
    PatternDriven,
}

impl Policy {
    /// The equivalent open-registry policy.
    pub fn as_policy(self) -> Box<dyn SchedulerPolicy> {
        match self {
            Policy::Serial => Box::new(mpas_sched::Serial),
            Policy::CpuOnly => Box::new(mpas_sched::CpuOnly),
            Policy::AccOnly => Box::new(mpas_sched::AccOnly),
            Policy::KernelLevel => Box::new(mpas_sched::KernelLevel),
            Policy::PatternDriven => Box::new(mpas_sched::PatternDriven::default()),
        }
    }
}

impl SchedulerPolicy for Policy {
    fn name(&self) -> String {
        self.as_policy().name()
    }

    fn uses_accelerator(&self) -> bool {
        self.as_policy().uses_accelerator()
    }

    fn schedule(&self, dag: &TaskDag, platform: &Platform) -> Schedule {
        self.as_policy().schedule(dag, platform)
    }
}

/// Schedule one substep graph under a policy.
pub fn schedule_substep(
    graph: &DataflowGraph,
    mc: &MeshCounts,
    platform: &Platform,
    policy: impl SchedulerPolicy,
) -> Schedule {
    let dag = TaskDag::from_dataflow(graph, mc, platform);
    policy.schedule(&dag, platform)
}

/// Tunables of the pattern-driven scheduler, exposed for ablations.
#[derive(Debug, Clone, Copy)]
pub struct SchedOptions {
    /// Fraction of substep bytes above which a pattern may split.
    pub split_threshold: f64,
    /// Overlap host↔device transfers with unrelated device work (the
    /// paper's "overlapped data moving"); when false, a transfer delays
    /// its consumer's start additively.
    pub overlap_transfers: bool,
}

impl Default for SchedOptions {
    fn default() -> Self {
        // Blocking transfers by default: this is what the Table-II/Fig.-7
        // calibration was fitted against; the overlapped accounting is the
        // `overlap_ablation` study.
        SchedOptions {
            split_threshold: DEFAULT_SPLIT_THRESHOLD,
            overlap_transfers: false,
        }
    }
}

/// Pattern-driven scheduling with an explicit adjustability threshold
/// (fraction of substep bytes above which a pattern may split). Used by
/// the ablation studies; `schedule_substep` applies the default.
pub fn pattern_driven_schedule_with(
    graph: &DataflowGraph,
    mc: &MeshCounts,
    platform: &Platform,
    split_threshold: f64,
) -> Schedule {
    pattern_driven_schedule_opts(
        graph,
        mc,
        platform,
        SchedOptions {
            split_threshold,
            ..Default::default()
        },
    )
}

/// Pattern-driven scheduling with full options.
pub fn pattern_driven_schedule_opts(
    graph: &DataflowGraph,
    mc: &MeshCounts,
    platform: &Platform,
    opts: SchedOptions,
) -> Schedule {
    let dag = TaskDag::from_dataflow_with(
        graph,
        mc,
        platform,
        &RooflineCost,
        DagOptions {
            split_threshold: opts.split_threshold,
        },
    );
    mpas_sched::PatternDriven {
        overlap_transfers: opts.overlap_transfers,
    }
    .schedule(&dag, platform)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpas_patterns::dataflow::RkPhase;

    fn setup() -> (DataflowGraph, MeshCounts, Platform) {
        (
            DataflowGraph::for_substep(RkPhase::Intermediate),
            MeshCounts::icosahedral(655_362),
            Platform::paper_node(),
        )
    }

    #[test]
    fn policies_order_as_the_paper_reports() {
        let (g, mc, p) = setup();
        let serial = schedule_substep(&g, &mc, &p, Policy::Serial).makespan;
        let cpu = schedule_substep(&g, &mc, &p, Policy::CpuOnly).makespan;
        let kernel = schedule_substep(&g, &mc, &p, Policy::KernelLevel).makespan;
        let pattern = schedule_substep(&g, &mc, &p, Policy::PatternDriven).makespan;
        assert!(cpu < serial, "10 cores beat 1 core");
        assert!(kernel < cpu, "hybrid beats CPU-only");
        assert!(pattern < kernel, "pattern-driven beats kernel-level");
    }

    #[test]
    fn pattern_driven_speedup_in_paper_band() {
        // Paper Fig. 7 at 655 362 cells: kernel-level ≈ 6x, pattern ≈ 8x
        // vs the single-core CPU code.
        let (g, mc, p) = setup();
        let serial = schedule_substep(&g, &mc, &p, Policy::Serial).makespan;
        let kernel = schedule_substep(&g, &mc, &p, Policy::KernelLevel).makespan;
        let pattern = schedule_substep(&g, &mc, &p, Policy::PatternDriven).makespan;
        let s_k = serial / kernel;
        let s_p = serial / pattern;
        assert!((4.0..8.0).contains(&s_k), "kernel-level speedup {s_k}");
        assert!((6.0..11.0).contains(&s_p), "pattern speedup {s_p}");
        assert!(
            s_p / s_k > 1.15,
            "pattern advantage too small: {}",
            s_p / s_k
        );
    }

    #[test]
    fn pattern_driven_improves_load_balance() {
        let (g, mc, p) = setup();
        let kernel = schedule_substep(&g, &mc, &p, Policy::KernelLevel);
        let pattern = schedule_substep(&g, &mc, &p, Policy::PatternDriven);
        assert!(
            pattern.imbalance() < kernel.imbalance(),
            "pattern {} vs kernel {}",
            pattern.imbalance(),
            kernel.imbalance()
        );
    }

    #[test]
    fn schedules_respect_dependencies() {
        let (g, mc, p) = setup();
        for policy in [Policy::KernelLevel, Policy::PatternDriven] {
            let s = schedule_substep(&g, &mc, &p, policy);
            for (id, ns) in s.nodes.iter().enumerate() {
                for &pred in &g.preds[id] {
                    assert!(
                        s.nodes[pred].finish <= ns.start + 1e-12,
                        "{:?}: {} starts before {} finishes",
                        policy,
                        ns.name,
                        s.nodes[pred].name
                    );
                }
            }
        }
    }

    #[test]
    fn split_fractions_are_sane() {
        let (g, mc, p) = setup();
        let s = schedule_substep(&g, &mc, &p, Policy::PatternDriven);
        let mut any_split = false;
        for ns in &s.nodes {
            if let Placement::Split(f) = ns.placement {
                any_split = true;
                assert!((0.0..=1.0).contains(&f));
            }
        }
        assert!(any_split, "pattern-driven never split a node");
    }

    #[test]
    fn speedup_grows_with_mesh_size() {
        // Paper Fig. 7: speedups increase from the 40 962-cell mesh to the
        // 2 621 442-cell mesh (overheads amortize).
        let g = DataflowGraph::for_substep(RkPhase::Intermediate);
        let p = Platform::paper_node();
        let ratio = |n: usize| {
            let mc = MeshCounts::icosahedral(n);
            let serial = schedule_substep(&g, &mc, &p, Policy::Serial).makespan;
            let pat = schedule_substep(&g, &mc, &p, Policy::PatternDriven).makespan;
            serial / pat
        };
        assert!(ratio(2_621_442) > ratio(40_962));
    }

    #[test]
    fn enum_and_registry_policies_agree() {
        // The compat shim must produce exactly what the registry produces.
        let (g, mc, p) = setup();
        for (policy, name) in [
            (Policy::Serial, "serial"),
            (Policy::CpuOnly, "cpu-only"),
            (Policy::AccOnly, "acc-only"),
            (Policy::KernelLevel, "kernel-level"),
            (Policy::PatternDriven, "pattern-driven"),
        ] {
            let via_enum = schedule_substep(&g, &mc, &p, policy).makespan;
            let via_name =
                schedule_substep(&g, &mc, &p, mpas_sched::resolve(name).unwrap()).makespan;
            assert_eq!(via_enum, via_name, "{name}");
        }
    }
}
