//! Makespan scheduling of the data-flow diagram onto the simulated node.
//!
//! Three executable policies, mirroring the paper's comparison:
//!
//! * **Serial** — every pattern on one CPU core, in program order (the
//!   "original CPU code").
//! * **KernelLevel** (Fig. 2) — whole kernels are the scheduling unit;
//!   independent kernels may overlap across devices, but a kernel never
//!   splits, so load balance is coarse.
//! * **PatternDriven** (Fig. 4 (b)) — individual pattern instances are
//!   scheduled with an earliest-finish-time heuristic, and heavy
//!   "adjustable" patterns are split between CPU and accelerator at the
//!   fraction that equalizes their finish times.
//!
//! Cross-device data dependencies pay for a transfer on the (serialized)
//! link; variables made on one device become resident on both after the
//! transfer, modeling the paper's keep-data-resident strategy (§IV.A).

use crate::device::Platform;
use mpas_patterns::dataflow::{DataflowGraph, Kernel, MeshCounts};
use mpas_patterns::pattern::Variable;
use std::collections::HashMap;

/// Where a node (or part of it) ran.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Placement {
    /// Entirely on the host CPU.
    Cpu,
    /// Entirely on the accelerator.
    Acc,
    /// Split with this fraction of the output range on the accelerator.
    Split(f64),
}

/// Scheduling decision and timing for one node.
#[derive(Debug, Clone)]
pub struct NodeSchedule {
    /// Table-I pattern-instance label.
    pub name: &'static str,
    /// Device assignment (possibly split).
    pub placement: Placement,
    /// Start time, seconds from substep entry.
    pub start: f64,
    /// Finish time, seconds from substep entry.
    pub finish: f64,
}

/// Result of scheduling one substep graph.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Completion time of the whole substep, seconds.
    pub makespan: f64,
    /// Per-node decisions and timings, in scheduling order.
    pub nodes: Vec<NodeSchedule>,
    /// CPU busy time (for utilization/load-balance reporting).
    pub cpu_busy: f64,
    /// Accelerator busy time.
    pub acc_busy: f64,
}

impl Schedule {
    /// Fraction of the makespan during which the less-used device idles —
    /// the load-imbalance the pattern-driven design attacks.
    pub fn imbalance(&self) -> f64 {
        let lo = self.cpu_busy.min(self.acc_busy);
        let hi = self.cpu_busy.max(self.acc_busy);
        if hi == 0.0 {
            0.0
        } else {
            (hi - lo) / hi
        }
    }
}

/// The scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// The original single-core CPU code.
    Serial,
    /// All kernels on the full multi-core host.
    CpuOnly,
    /// Offload everything to the accelerator (§II.C's first option).
    AccOnly,
    /// Whole-kernel hybrid scheduling (Fig. 2).
    KernelLevel,
    /// Pattern-instance hybrid scheduling with splits (Fig. 4 (b)).
    PatternDriven,
}

/// Bytes of one field of a variable at the given mesh size.
fn var_bytes(v: Variable, mc: &MeshCounts) -> f64 {
    use mpas_patterns::pattern::MeshLocation::*;
    8.0 * match v.location() {
        Cell => mc.n_cells,
        Edge => mc.n_edges,
        Vertex => mc.n_vertices,
    }
}

/// Schedule one substep graph under a policy.
pub fn schedule_substep(
    graph: &DataflowGraph,
    mc: &MeshCounts,
    platform: &Platform,
    policy: Policy,
) -> Schedule {
    match policy {
        Policy::Serial => serial_schedule(graph, mc, platform),
        Policy::CpuOnly | Policy::AccOnly => {
            single_device_schedule(graph, mc, platform, policy)
        }
        Policy::KernelLevel => kernel_level_schedule(graph, mc, platform),
        Policy::PatternDriven => pattern_driven_schedule(graph, mc, platform),
    }
}

fn serial_schedule(
    graph: &DataflowGraph,
    mc: &MeshCounts,
    platform: &Platform,
) -> Schedule {
    let core = crate::device::DeviceSpec::cpu_single_core();
    let _ = platform;
    let mut t = 0.0;
    let mut nodes = Vec::with_capacity(graph.len());
    for n in &graph.nodes {
        let dt = core.node_time(n.work(mc));
        nodes.push(NodeSchedule {
            name: n.name,
            placement: Placement::Cpu,
            start: t,
            finish: t + dt,
        });
        t += dt;
    }
    Schedule { makespan: t, nodes, cpu_busy: t, acc_busy: 0.0 }
}

fn single_device_schedule(
    graph: &DataflowGraph,
    mc: &MeshCounts,
    platform: &Platform,
    policy: Policy,
) -> Schedule {
    let dev = if policy == Policy::CpuOnly { &platform.cpu } else { &platform.acc };
    let mut t = 0.0;
    let mut nodes = Vec::with_capacity(graph.len());
    for n in &graph.nodes {
        let dt = dev.node_time(n.work(mc));
        let placement = if policy == Policy::CpuOnly {
            Placement::Cpu
        } else {
            Placement::Acc
        };
        nodes.push(NodeSchedule { name: n.name, placement, start: t, finish: t + dt });
        t += dt;
    }
    let (cpu_busy, acc_busy) =
        if policy == Policy::CpuOnly { (t, 0.0) } else { (0.0, t) };
    Schedule { makespan: t, nodes, cpu_busy, acc_busy }
}

/// Tracks which devices hold a current copy of each variable.
struct Residency {
    map: HashMap<Variable, (bool, bool)>, // (on_cpu, on_acc)
}

impl Residency {
    /// At substep entry every input is synchronized on both devices
    /// (the paper keeps mesh and state resident; boundaries sync at the
    /// halo-exchange points).
    fn fresh() -> Self {
        Residency { map: HashMap::new() }
    }

    fn present(&self, v: Variable, on_acc: bool) -> bool {
        match self.map.get(&v) {
            None => true, // substep input: everywhere
            Some(&(c, a)) => {
                if on_acc {
                    a
                } else {
                    c
                }
            }
        }
    }

    fn write(&mut self, v: Variable, placement: Placement) {
        let entry = match placement {
            Placement::Cpu => (true, false),
            Placement::Acc => (false, true),
            Placement::Split(_) => (true, true), // halves merged via link
        };
        self.map.insert(v, entry);
    }

    fn mark_everywhere(&mut self, v: Variable) {
        self.map.insert(v, (true, true));
    }
}

/// Static kernel→device map of the paper's Fig. 2: the heavy kernels live
/// on the accelerator; `accumulative_update` (independent of the
/// diagnostics) and the output-only `mpas_reconstruct` overlap on the CPU.
fn kernel_level_device(kernel: Kernel) -> usize {
    match kernel {
        Kernel::AccumulativeUpdate | Kernel::MpasReconstruct => 0, // CPU
        _ => 1,                                                    // MIC
    }
}

fn kernel_level_schedule(
    graph: &DataflowGraph,
    mc: &MeshCounts,
    platform: &Platform,
) -> Schedule {
    // Group node ids by kernel, preserving program order of first touch.
    let mut kernel_order: Vec<Kernel> = Vec::new();
    let mut groups: HashMap<Kernel, Vec<usize>> = HashMap::new();
    for (id, n) in graph.nodes.iter().enumerate() {
        if !groups.contains_key(&n.kernel) {
            kernel_order.push(n.kernel);
        }
        groups.entry(n.kernel).or_default().push(id);
    }

    let mut avail = [0.0f64; 2]; // cpu, acc
    let mut link_avail = 0.0f64;
    let mut node_finish = vec![0.0f64; graph.len()];
    let mut res = Residency::fresh();
    let mut out_nodes: Vec<Option<NodeSchedule>> = vec![None; graph.len()];
    let mut busy = [0.0f64; 2];

    for kernel in kernel_order {
        let ids = &groups[&kernel];
        // Dependency-ready time of the whole kernel.
        let ready = ids
            .iter()
            .flat_map(|&id| graph.preds[id].iter())
            .map(|&p| node_finish[p])
            .fold(0.0f64, f64::max);
        // Fig. 2 static placement.
        let dev_idx = kernel_level_device(kernel);
        let dev = if dev_idx == 0 { &platform.cpu } else { &platform.acc };
        let mut xfer_bytes = 0.0;
        for &id in ids {
            for &v in &graph.nodes[id].inputs {
                if !res.present(v, dev_idx == 1) {
                    xfer_bytes += var_bytes(v, mc);
                }
            }
        }
        let xfer_time =
            if xfer_bytes > 0.0 { platform.link.time(xfer_bytes) } else { 0.0 };
        let start = ready
            .max(avail[dev_idx])
            .max(if xfer_bytes > 0.0 { link_avail } else { 0.0 })
            + xfer_time;
        let exec: f64 = ids
            .iter()
            .map(|&id| dev.node_time(graph.nodes[id].work(mc)))
            .sum();
        let finish = start + exec;
        if xfer_time > 0.0 {
            link_avail = start; // link busy until kernel start
            // Transferred inputs become resident on both devices.
            for &id in ids {
                for &v in &graph.nodes[id].inputs {
                    if !res.present(v, dev_idx == 1) {
                        res.mark_everywhere(v);
                    }
                }
            }
        }
        avail[dev_idx] = finish;
        busy[dev_idx] += finish - start;
        // Lay nodes back-to-back inside the kernel for reporting.
        let mut t = start;
        for &id in ids {
            let dt = dev.node_time(graph.nodes[id].work(mc));
            node_finish[id] = t + dt;
            out_nodes[id] = Some(NodeSchedule {
                name: graph.nodes[id].name,
                placement: if dev_idx == 0 { Placement::Cpu } else { Placement::Acc },
                start: t,
                finish: t + dt,
            });
            for &v in &graph.nodes[id].outputs {
                res.write(
                    v,
                    if dev_idx == 0 { Placement::Cpu } else { Placement::Acc },
                );
            }
            t += dt;
        }
    }

    let makespan = avail[0].max(avail[1]);
    Schedule {
        makespan,
        nodes: out_nodes.into_iter().map(Option::unwrap).collect(),
        cpu_busy: busy[0],
        acc_busy: busy[1],
    }
}

/// Share of substep work above which a node is "adjustable" (splittable).
pub const DEFAULT_SPLIT_THRESHOLD: f64 = 0.08;

fn pattern_driven_schedule(
    graph: &DataflowGraph,
    mc: &MeshCounts,
    platform: &Platform,
) -> Schedule {
    pattern_driven_schedule_with(graph, mc, platform, DEFAULT_SPLIT_THRESHOLD)
}

/// Tunables of the pattern-driven scheduler, exposed for ablations.
#[derive(Debug, Clone, Copy)]
pub struct SchedOptions {
    /// Fraction of substep bytes above which a pattern may split.
    pub split_threshold: f64,
    /// Overlap host↔device transfers with unrelated device work (the
    /// paper's "overlapped data moving"); when false, a transfer delays
    /// its consumer's start additively.
    pub overlap_transfers: bool,
}

impl Default for SchedOptions {
    fn default() -> Self {
        // Blocking transfers by default: this is what the Table-II/Fig.-7
        // calibration was fitted against; the overlapped accounting is the
        // `overlap_ablation` study.
        SchedOptions {
            split_threshold: DEFAULT_SPLIT_THRESHOLD,
            overlap_transfers: false,
        }
    }
}

/// Pattern-driven scheduling with an explicit adjustability threshold
/// (fraction of substep bytes above which a pattern may split). Used by
/// the ablation studies; `schedule_substep` applies the default.
pub fn pattern_driven_schedule_with(
    graph: &DataflowGraph,
    mc: &MeshCounts,
    platform: &Platform,
    split_threshold: f64,
) -> Schedule {
    pattern_driven_schedule_opts(
        graph,
        mc,
        platform,
        SchedOptions { split_threshold, ..Default::default() },
    )
}

/// Pattern-driven scheduling with full options.
pub fn pattern_driven_schedule_opts(
    graph: &DataflowGraph,
    mc: &MeshCounts,
    platform: &Platform,
    opts: SchedOptions,
) -> Schedule {
    let split_threshold = opts.split_threshold;
    let total_bytes: f64 = graph.nodes.iter().map(|n| n.work(mc).bytes).sum();
    let mut avail = [0.0f64; 2];
    let mut link_avail = 0.0f64;
    let mut node_finish = vec![0.0f64; graph.len()];
    let mut res = Residency::fresh();
    let mut out_nodes = Vec::with_capacity(graph.len());
    let mut busy = [0.0f64; 2];

    for (id, node) in graph.nodes.iter().enumerate() {
        let work = node.work(mc);
        let ready = graph.preds[id]
            .iter()
            .map(|&p| node_finish[p])
            .fold(0.0f64, f64::max);

        // Earliest start on each device including any required transfer.
        let mut est = [0.0f64; 2];
        let mut xfer = [0.0f64; 2];
        for dev_idx in 0..2 {
            let mut xfer_bytes = 0.0;
            for &v in &node.inputs {
                if !res.present(v, dev_idx == 1) {
                    xfer_bytes += var_bytes(v, mc);
                }
            }
            xfer[dev_idx] = if xfer_bytes > 0.0 {
                platform.link.time(xfer_bytes)
            } else {
                0.0
            };
            est[dev_idx] = if xfer_bytes == 0.0 {
                ready.max(avail[dev_idx])
            } else if opts.overlap_transfers {
                // The transfer starts as soon as the data and the link are
                // free, hiding under the device's other work.
                let xfer_done = ready.max(link_avail) + xfer[dev_idx];
                ready.max(avail[dev_idx]).max(xfer_done)
            } else {
                ready.max(avail[dev_idx]).max(link_avail) + xfer[dev_idx]
            };
        }
        let t_cpu = platform.cpu.node_time(work);
        let t_acc = platform.acc.node_time(work);

        let splittable = work.bytes / total_bytes > split_threshold
            && node.class != mpas_patterns::PatternClass::Local;

        // Candidate A: whole-node EFT.
        let fin_cpu = est[0] + t_cpu;
        let fin_acc = est[1] + t_acc;

        // Candidate B: split so both devices finish together:
        //   est_a + f·A = est_c + (1−f)·C  ⇒  f = (est_c + C − est_a)/(A + C)
        let mut chosen: (Placement, f64, f64); // (placement, start, finish)
        if splittable {
            let a = t_acc - platform.acc.launch_overhead;
            let c = t_cpu - platform.cpu.launch_overhead;
            let f = ((est[0] + c - est[1]) / (a + c)).clamp(0.0, 1.0);
            if f > 0.02 && f < 0.98 {
                let fin_split = (est[1]
                    + platform.acc.launch_overhead
                    + a * f)
                    .max(est[0] + platform.cpu.launch_overhead + c * (1.0 - f))
                    // Merge the two halves across the link.
                    + platform
                        .link
                        .time(node.outputs.iter().map(|&v| var_bytes(v, mc)).sum::<f64>() * 0.5);
                if fin_split < fin_cpu.min(fin_acc) {
                    chosen = (Placement::Split(f), est[0].min(est[1]), fin_split);
                    // Both devices busy until the split finishes.
                    avail[0] = avail[0].max(fin_split);
                    avail[1] = avail[1].max(fin_split);
                    busy[0] += c * (1.0 - f) + platform.cpu.launch_overhead;
                    busy[1] += a * f + platform.acc.launch_overhead;
                    link_avail = fin_split;
                    finalize(
                        &mut out_nodes,
                        &mut node_finish,
                        &mut res,
                        graph,
                        id,
                        chosen.clone(),
                    );
                    continue;
                }
            }
        }
        // Whole-node assignment.
        if fin_cpu <= fin_acc {
            chosen = (Placement::Cpu, est[0], fin_cpu);
            avail[0] = fin_cpu;
            busy[0] += t_cpu;
            if xfer[0] > 0.0 {
                link_avail = est[0];
                for &v in &node.inputs {
                    if !res.present(v, false) {
                        res.mark_everywhere(v);
                    }
                }
            }
        } else {
            chosen = (Placement::Acc, est[1], fin_acc);
            avail[1] = fin_acc;
            busy[1] += t_acc;
            if xfer[1] > 0.0 {
                link_avail = est[1];
                for &v in &node.inputs {
                    if !res.present(v, true) {
                        res.mark_everywhere(v);
                    }
                }
            }
        }
        chosen.1 = chosen.1.max(0.0);
        finalize(&mut out_nodes, &mut node_finish, &mut res, graph, id, chosen);
    }

    let makespan = avail[0].max(avail[1]);
    Schedule { makespan, nodes: out_nodes, cpu_busy: busy[0], acc_busy: busy[1] }
}

fn finalize(
    out_nodes: &mut Vec<NodeSchedule>,
    node_finish: &mut [f64],
    res: &mut Residency,
    graph: &DataflowGraph,
    id: usize,
    (placement, start, finish): (Placement, f64, f64),
) {
    node_finish[id] = finish;
    for &v in &graph.nodes[id].outputs {
        res.write(v, placement);
    }
    out_nodes.push(NodeSchedule {
        name: graph.nodes[id].name,
        placement,
        start,
        finish,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpas_patterns::dataflow::RkPhase;

    fn setup() -> (DataflowGraph, MeshCounts, Platform) {
        (
            DataflowGraph::for_substep(RkPhase::Intermediate),
            MeshCounts::icosahedral(655_362),
            Platform::paper_node(),
        )
    }

    #[test]
    fn policies_order_as_the_paper_reports() {
        let (g, mc, p) = setup();
        let serial = schedule_substep(&g, &mc, &p, Policy::Serial).makespan;
        let cpu = schedule_substep(&g, &mc, &p, Policy::CpuOnly).makespan;
        let kernel = schedule_substep(&g, &mc, &p, Policy::KernelLevel).makespan;
        let pattern = schedule_substep(&g, &mc, &p, Policy::PatternDriven).makespan;
        assert!(cpu < serial, "10 cores beat 1 core");
        assert!(kernel < cpu, "hybrid beats CPU-only");
        assert!(pattern < kernel, "pattern-driven beats kernel-level");
    }

    #[test]
    fn pattern_driven_speedup_in_paper_band() {
        // Paper Fig. 7 at 655 362 cells: kernel-level ≈ 6x, pattern ≈ 8x
        // vs the single-core CPU code.
        let (g, mc, p) = setup();
        let serial = schedule_substep(&g, &mc, &p, Policy::Serial).makespan;
        let kernel = schedule_substep(&g, &mc, &p, Policy::KernelLevel).makespan;
        let pattern = schedule_substep(&g, &mc, &p, Policy::PatternDriven).makespan;
        let s_k = serial / kernel;
        let s_p = serial / pattern;
        assert!((4.0..8.0).contains(&s_k), "kernel-level speedup {s_k}");
        assert!((6.0..11.0).contains(&s_p), "pattern speedup {s_p}");
        assert!(s_p / s_k > 1.15, "pattern advantage too small: {}", s_p / s_k);
    }

    #[test]
    fn pattern_driven_improves_load_balance() {
        let (g, mc, p) = setup();
        let kernel = schedule_substep(&g, &mc, &p, Policy::KernelLevel);
        let pattern = schedule_substep(&g, &mc, &p, Policy::PatternDriven);
        assert!(
            pattern.imbalance() < kernel.imbalance(),
            "pattern {} vs kernel {}",
            pattern.imbalance(),
            kernel.imbalance()
        );
    }

    #[test]
    fn schedules_respect_dependencies() {
        let (g, mc, p) = setup();
        for policy in [Policy::KernelLevel, Policy::PatternDriven] {
            let s = schedule_substep(&g, &mc, &p, policy);
            for (id, ns) in s.nodes.iter().enumerate() {
                for &pred in &g.preds[id] {
                    assert!(
                        s.nodes[pred].finish <= ns.start + 1e-12,
                        "{:?}: {} starts before {} finishes",
                        policy,
                        ns.name,
                        s.nodes[pred].name
                    );
                }
            }
        }
    }

    #[test]
    fn split_fractions_are_sane() {
        let (g, mc, p) = setup();
        let s = schedule_substep(&g, &mc, &p, Policy::PatternDriven);
        let mut any_split = false;
        for ns in &s.nodes {
            if let Placement::Split(f) = ns.placement {
                any_split = true;
                assert!((0.0..=1.0).contains(&f));
            }
        }
        assert!(any_split, "pattern-driven never split a node");
    }

    #[test]
    fn speedup_grows_with_mesh_size() {
        // Paper Fig. 7: speedups increase from the 40 962-cell mesh to the
        // 2 621 442-cell mesh (overheads amortize).
        let g = DataflowGraph::for_substep(RkPhase::Intermediate);
        let p = Platform::paper_node();
        let ratio = |n: usize| {
            let mc = MeshCounts::icosahedral(n);
            let serial = schedule_substep(&g, &mc, &p, Policy::Serial).makespan;
            let pat = schedule_substep(&g, &mc, &p, Policy::PatternDriven).makespan;
            serial / pat
        };
        assert!(ratio(2_621_442) > ratio(40_962));
    }
}
