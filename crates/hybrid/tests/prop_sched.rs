//! Property tests of the makespan scheduler: structural validity and
//! sound bounds across random mesh sizes and device parameters.

use mpas_hybrid::sched::{schedule_substep, Placement, Policy};
use mpas_hybrid::{DeviceSpec, Platform, TransferLink};
use mpas_patterns::dataflow::{DataflowGraph, MeshCounts, RkPhase};
use proptest::prelude::*;

fn platform(cpu_bw: f64, acc_bw: f64, link_bw: f64) -> Platform {
    let mut p = Platform::paper_node();
    p.cpu = DeviceSpec {
        mem_bw: cpu_bw,
        ..p.cpu
    };
    p.acc = DeviceSpec {
        mem_bw: acc_bw,
        ..p.acc
    };
    p.link = TransferLink {
        latency: 1e-5,
        bandwidth: link_bw,
    };
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every schedule respects dependencies, has non-negative intervals,
    /// and its makespan is bounded below by the critical path on the
    /// fastest device and above by fully-serial execution on the slowest.
    #[test]
    fn schedules_are_sound(
        n_cells in 10_000usize..3_000_000,
        cpu_bw in 5e9f64..60e9,
        acc_bw in 5e9f64..120e9,
        link_bw in 1e9f64..24e9,
        final_phase in proptest::bool::ANY,
    ) {
        let phase = if final_phase { RkPhase::Final } else { RkPhase::Intermediate };
        let g = DataflowGraph::for_substep(phase);
        let mc = MeshCounts::icosahedral(n_cells);
        let p = platform(cpu_bw, acc_bw, link_bw);
        for policy in [Policy::KernelLevel, Policy::PatternDriven] {
            let s = schedule_substep(&g, &mc, &p, policy);
            prop_assert!(s.makespan.is_finite() && s.makespan > 0.0);
            for (id, ns) in s.nodes.iter().enumerate() {
                prop_assert!(ns.finish >= ns.start - 1e-12);
                for &pred in &g.preds[id] {
                    prop_assert!(
                        s.nodes[pred].finish <= ns.start + 1e-9,
                        "{:?}: dep violated {} -> {}",
                        policy, s.nodes[pred].name, ns.name
                    );
                }
                if let Placement::Split(f) = ns.placement {
                    prop_assert!((0.0..=1.0).contains(&f));
                }
            }
            // Lower bound: critical path at the best single-node rate.
            let best = |w: mpas_patterns::dataflow::Work| {
                p.cpu.node_time(w).min(p.acc.node_time(w))
            };
            let (cp, _) = g.critical_path(|n| best(n.work(&mc)));
            // Splits can beat single-device node times, at most by the
            // combined-bandwidth factor.
            let combine = (p.cpu.mem_bw + p.acc.mem_bw)
                / p.cpu.mem_bw.max(p.acc.mem_bw);
            prop_assert!(
                s.makespan > cp / combine * 0.99,
                "{policy:?}: makespan {} below bound {}",
                s.makespan,
                cp / combine
            );
            // Upper bound: everything serial on the slower device.
            let worst: f64 = g
                .nodes
                .iter()
                .map(|n| p.cpu.node_time(n.work(&mc)).max(p.acc.node_time(n.work(&mc))))
                .sum::<f64>()
                + 8.0 * p.link.time(8.0 * 3.0 * n_cells as f64);
            prop_assert!(s.makespan <= worst * 1.01);
        }
    }

    /// Device busy time never exceeds the makespan, and pattern-driven
    /// utilization beats kernel-level on balanced platforms.
    #[test]
    fn busy_time_bounded_by_makespan(
        n_cells in 50_000usize..2_000_000,
        scale in 0.5f64..2.0,
    ) {
        let g = DataflowGraph::for_substep(RkPhase::Intermediate);
        let mc = MeshCounts::icosahedral(n_cells);
        let p = platform(20e9 * scale, 28e9 * scale, 6e9);
        for policy in [Policy::KernelLevel, Policy::PatternDriven] {
            let s = schedule_substep(&g, &mc, &p, policy);
            prop_assert!(s.cpu_busy <= s.makespan * 1.001);
            prop_assert!(s.acc_busy <= s.makespan * 1.001);
        }
    }

    /// Serial policy is exactly the sum of single-core node times,
    /// regardless of the platform.
    #[test]
    fn serial_is_sum_of_node_times(n_cells in 10_000usize..1_000_000) {
        let g = DataflowGraph::for_substep(RkPhase::Intermediate);
        let mc = MeshCounts::icosahedral(n_cells);
        let p = Platform::paper_node();
        let s = schedule_substep(&g, &mc, &p, Policy::Serial);
        let core = DeviceSpec::cpu_single_core();
        let expect: f64 = g.nodes.iter().map(|n| core.node_time(n.work(&mc))).sum();
        prop_assert!((s.makespan - expect).abs() < 1e-12 * expect);
    }
}
