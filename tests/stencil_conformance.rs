//! Stencil conformance: each kernel operator must depend on exactly the
//! neighborhood its Table-I pattern declares — verified experimentally by
//! perturbation. Perturbing an input *outside* the declared stencil of an
//! output point must leave that output bit-identical; perturbing *inside*
//! must change it. This pins the code to the paper's Fig. 3 taxonomy.

use mpas_repro::mesh::Mesh;
use mpas_repro::swe::kernels::ops;
use std::collections::HashSet;

fn mesh() -> Mesh {
    mpas_repro::mesh::generate(3, 0)
}

fn edge_field(m: &Mesh) -> Vec<f64> {
    (0..m.n_edges())
        .map(|e| (e as f64 * 0.37).sin() * 10.0)
        .collect()
}

/// Edges belonging to cell `i`'s declared class-A stencil.
fn edges_of_cell(m: &Mesh, i: usize) -> HashSet<usize> {
    m.edges_of_cell(i).iter().map(|&e| e as usize).collect()
}

/// Find an entity far from a set (not contained in it).
fn far_member(n: usize, exclude: &HashSet<usize>) -> usize {
    (0..n)
        .rev()
        .find(|k| !exclude.contains(k))
        .expect("no far entity")
}

#[test]
fn class_a_ke_depends_exactly_on_cell_edges() {
    let m = mesh();
    let mut u = edge_field(&m);
    let cell = 37usize;
    let stencil = edges_of_cell(&m, cell);

    let mut out = vec![0.0; m.n_cells()];
    ops::ke(&m, &u, &mut out, 0..m.n_cells());
    let before = out[cell];

    // Outside the stencil: no change.
    let far = far_member(m.n_edges(), &stencil);
    u[far] += 5.0;
    ops::ke(&m, &u, &mut out, 0..m.n_cells());
    assert_eq!(out[cell], before, "ke leaked beyond its stencil");
    u[far] -= 5.0;

    // Inside: must change.
    let near = *stencil.iter().next().unwrap();
    u[near] += 5.0;
    ops::ke(&m, &u, &mut out, 0..m.n_cells());
    assert_ne!(out[cell], before, "ke ignored an in-stencil edge");
}

#[test]
fn class_c_vorticity_depends_exactly_on_vertex_edges() {
    let m = mesh();
    let mut u = edge_field(&m);
    let vertex = 101usize;
    let stencil: HashSet<usize> = m.edges_on_vertex[vertex]
        .iter()
        .map(|&e| e as usize)
        .collect();

    let mut out = vec![0.0; m.n_vertices()];
    ops::vorticity(&m, &u, &mut out, 0..m.n_vertices());
    let before = out[vertex];

    let far = far_member(m.n_edges(), &stencil);
    u[far] += 3.0;
    ops::vorticity(&m, &u, &mut out, 0..m.n_vertices());
    assert_eq!(out[vertex], before);

    let near = *stencil.iter().next().unwrap();
    u[near] += 3.0;
    ops::vorticity(&m, &u, &mut out, 0..m.n_vertices());
    assert_ne!(out[vertex], before);
}

#[test]
fn class_h_tangential_velocity_depends_exactly_on_edges_on_edge() {
    let m = mesh();
    let mut u = edge_field(&m);
    let edge = 55usize;
    let stencil: HashSet<usize> = m.edges_of_edge(edge).iter().map(|&e| e as usize).collect();
    // The edge itself is NOT in its own TRiSK neighborhood.
    assert!(!stencil.contains(&edge));

    let mut out = vec![0.0; m.n_edges()];
    ops::tangential_velocity(&m, &u, &mut out, 0..m.n_edges());
    let before = out[edge];

    // Perturbing the edge's own normal velocity leaves v unchanged.
    u[edge] += 2.0;
    ops::tangential_velocity(&m, &u, &mut out, 0..m.n_edges());
    assert_eq!(out[edge], before, "v_e must not depend on u_e");
    u[edge] -= 2.0;

    let far = far_member(m.n_edges(), &stencil);
    assert_ne!(far, edge);
    u[far] += 2.0;
    ops::tangential_velocity(&m, &u, &mut out, 0..m.n_edges());
    assert_eq!(out[edge], before);

    let near = *stencil.iter().next().unwrap();
    u[near] += 2.0;
    ops::tangential_velocity(&m, &u, &mut out, 0..m.n_edges());
    assert_ne!(out[edge], before);
}

#[test]
fn class_f_pv_cell_depends_exactly_on_cell_vertices() {
    let m = mesh();
    let mut pv: Vec<f64> = (0..m.n_vertices())
        .map(|v| (v as f64 * 0.11).cos())
        .collect();
    let cell = 12usize;
    let stencil: HashSet<usize> = m
        .vertices_of_cell(cell)
        .iter()
        .map(|&v| v as usize)
        .collect();

    let mut out = vec![0.0; m.n_cells()];
    ops::pv_cell(&m, &pv, &mut out, 0..m.n_cells());
    let before = out[cell];

    let far = far_member(m.n_vertices(), &stencil);
    pv[far] += 1.0;
    ops::pv_cell(&m, &pv, &mut out, 0..m.n_cells());
    assert_eq!(out[cell], before);

    let near = *stencil.iter().next().unwrap();
    pv[near] += 1.0;
    ops::pv_cell(&m, &pv, &mut out, 0..m.n_cells());
    assert_ne!(out[cell], before);
}

#[test]
fn class_b_tend_u_reaches_edges_on_edge_but_no_further() {
    let m = mesh();
    let g = 9.80616;
    let h: Vec<f64> = (0..m.n_cells()).map(|i| 5000.0 + i as f64).collect();
    let b = vec![0.0; m.n_cells()];
    let ke = vec![0.0; m.n_cells()];
    let pv: Vec<f64> = (0..m.n_edges()).map(|e| 1e-8 + e as f64 * 1e-12).collect();
    let mut u = edge_field(&m);
    let h_edge: Vec<f64> = vec![5000.0; m.n_edges()];

    let edge = 200usize;
    let mut stencil: HashSet<usize> = m.edges_of_edge(edge).iter().map(|&e| e as usize).collect();
    stencil.insert(edge); // pv_edge[e] and the gradient use the edge itself

    let run = |u: &[f64], out: &mut Vec<f64>| {
        ops::tend_u(&m, g, &pv, u, &h_edge, &ke, &h, &b, out, 0..m.n_edges());
    };
    let mut out = vec![0.0; m.n_edges()];
    run(&u, &mut out);
    let before = out[edge];

    let far = far_member(m.n_edges(), &stencil);
    u[far] += 4.0;
    run(&u, &mut out);
    assert_eq!(out[edge], before, "tend_u leaked beyond edgesOnEdge");

    let near = *m.edges_of_edge(edge).first().unwrap() as usize;
    u[near] += 4.0;
    run(&u, &mut out);
    assert_ne!(out[edge], before);
}

#[test]
fn local_class_axpy_is_pointwise() {
    let m = mesh();
    let base = edge_field(&m);
    let mut tend = edge_field(&m);
    let n = m.n_edges();
    let mut out = vec![0.0; n];
    ops::axpy(&base, &tend, 0.5, &mut out, 0..n);
    let k = 77usize;
    let before = out[k];
    // Perturb every OTHER entry: out[k] must not move.
    for (j, t) in tend.iter_mut().enumerate() {
        if j != k {
            *t += 1.0;
        }
    }
    ops::axpy(&base, &tend, 0.5, &mut out, 0..n);
    assert_eq!(out[k], before);
    tend[k] += 1.0;
    ops::axpy(&base, &tend, 0.5, &mut out, 0..n);
    assert_ne!(out[k], before);
}
