//! Workspace-level assertions that each reproduced experiment has the
//! paper's *shape*: who wins, by roughly what factor, and where the
//! crossovers fall. EXPERIMENTS.md records the concrete numbers.

use mpas_repro::hybrid::sched::{schedule_substep, Policy};
use mpas_repro::hybrid::sim::{time_per_step, time_per_step_multirank};
use mpas_repro::hybrid::{fig6_ladder, OptStage, Platform};
use mpas_repro::msg::CommCostModel;
use mpas_repro::patterns::dataflow::{DataflowGraph, MeshCounts, RkPhase};

const TABLE3_CELLS: [usize; 4] = [40_962, 163_842, 655_362, 2_621_442];

#[test]
fn fig7_speedup_bands_and_growth() {
    let p = Platform::paper_node();
    let mut last_kernel = 0.0;
    let mut last_pattern = 0.0;
    for &cells in &TABLE3_CELLS {
        let mc = MeshCounts::icosahedral(cells);
        let serial = time_per_step(&mc, &p, Policy::Serial);
        let kernel = time_per_step(&mc, &p, Policy::KernelLevel);
        let pattern = time_per_step(&mc, &p, Policy::PatternDriven);
        let s_k = serial / kernel;
        let s_p = serial / pattern;
        // Paper bands: kernel-level 4.59..6.05, pattern 5.63..8.35 — allow
        // a generous halo around them.
        assert!((3.5..8.0).contains(&s_k), "{cells}: kernel {s_k}");
        assert!((5.0..10.5).contains(&s_p), "{cells}: pattern {s_p}");
        assert!(s_p > s_k, "{cells}: pattern must beat kernel");
        // Speedups grow with mesh size (amortized overheads).
        assert!(s_k >= last_kernel && s_p >= last_pattern);
        last_kernel = s_k;
        last_pattern = s_p;
    }
    // The headline: ≥ 30% pattern-driven advantage at the largest mesh
    // (paper: 38%).
    let mc = MeshCounts::icosahedral(2_621_442);
    let kernel = time_per_step(&mc, &p, Policy::KernelLevel);
    let pattern = time_per_step(&mc, &p, Policy::PatternDriven);
    assert!(kernel / pattern > 1.3, "advantage {}", kernel / pattern);
}

#[test]
fn fig7_absolute_times_near_paper() {
    // Calibration check: the modeled absolute step times should sit within
    // ~35% of the paper's reported values at both ends of Table III.
    let p = Platform::paper_node();
    let near = |modeled: f64, paper: f64| (modeled / paper - 1.0).abs() < 0.35;
    let small = MeshCounts::icosahedral(40_962);
    let large = MeshCounts::icosahedral(2_621_442);
    assert!(
        near(time_per_step(&small, &p, Policy::Serial), 0.271),
        "serial small: {}",
        time_per_step(&small, &p, Policy::Serial)
    );
    assert!(
        near(time_per_step(&large, &p, Policy::Serial), 17.528),
        "serial large: {}",
        time_per_step(&large, &p, Policy::Serial)
    );
    assert!(
        near(time_per_step(&large, &p, Policy::PatternDriven), 2.102),
        "pattern large: {}",
        time_per_step(&large, &p, Policy::PatternDriven)
    );
}

#[test]
fn fig6_ladder_reproduces_reported_stages() {
    let ladder = fig6_ladder(&MeshCounts::icosahedral(163_842));
    let get = |s: OptStage| ladder.iter().find(|&&(x, _)| x == s).unwrap().1;
    assert!(get(OptStage::OpenMp) < 20.0);
    assert!(get(OptStage::Refactoring) > 60.0);
    assert!(get(OptStage::Others) > 85.0 && get(OptStage::Others) < 115.0);
}

#[test]
fn fig8_strong_scaling_crossover() {
    // Small mesh: hybrid efficiency collapses by P=64; large mesh holds.
    let p = Platform::paper_node();
    let comm = CommCostModel::fdr_infiniband();
    let eff = |cells: usize, ranks: usize| {
        let t1 = time_per_step_multirank(cells, 1, &p, Policy::PatternDriven, &comm);
        let tp = time_per_step_multirank(cells, ranks, &p, Policy::PatternDriven, &comm);
        t1 / (tp * ranks as f64)
    };
    let small64 = eff(655_362, 64);
    let large64 = eff(2_621_442, 64);
    assert!(large64 > small64 + 0.1, "no size-dependent saturation");
    assert!(
        large64 > 0.8,
        "large mesh should stay near-ideal: {large64}"
    );
    assert!(small64 < 0.8, "small mesh should saturate: {small64}");
}

#[test]
fn fig9_weak_scaling_flat_for_both_versions() {
    let p = Platform::paper_node();
    let comm = CommCostModel::fdr_infiniband();
    for policy in [Policy::Serial, Policy::PatternDriven] {
        let t1 = time_per_step_multirank(40_962, 1, &p, policy, &comm);
        for &ranks in &[4usize, 16, 64] {
            let tp = time_per_step_multirank(40_962 * ranks, ranks, &p, policy, &comm);
            assert!(tp / t1 < 1.12, "{policy:?} at P={ranks}: {tp} vs {t1}");
        }
    }
}

#[test]
fn fig7x_policy_table_covers_registry_and_heft_beats_kernel_level() {
    // The `figures -- fig7x` acceptance: every registered policy schedules
    // every Table III mesh, and HEFT's makespan is never worse than the
    // kernel-level static map on any of them.
    use mpas_repro::sched::{registered_names, resolve};
    let p = Platform::paper_node();
    let names = registered_names();
    assert!(names.len() >= 6, "registry too small: {names:?}");
    for &cells in &TABLE3_CELLS {
        let mc = MeshCounts::icosahedral(cells);
        for spec in &names {
            let t = time_per_step(&mc, &p, resolve(spec).unwrap());
            assert!(t > 0.0 && t.is_finite(), "{spec} on {cells}: {t}");
        }
        let heft = time_per_step(&mc, &p, resolve("heft").unwrap());
        let kernel = time_per_step(&mc, &p, Policy::KernelLevel);
        assert!(
            heft <= kernel,
            "{cells}: heft {heft} worse than kernel-level {kernel}"
        );
    }
}

#[test]
fn final_substep_graph_schedules_consistently_too() {
    // All figure code paths use the intermediate graph; ensure the final
    // (reconstruction) graph behaves the same way.
    let g = DataflowGraph::for_substep(RkPhase::Final);
    let mc = MeshCounts::icosahedral(655_362);
    let p = Platform::paper_node();
    let serial = schedule_substep(&g, &mc, &p, Policy::Serial).makespan;
    let pattern = schedule_substep(&g, &mc, &p, Policy::PatternDriven).makespan;
    assert!(serial / pattern > 5.0);
}
