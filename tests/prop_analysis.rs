//! Property tests for the trace analyzer (PR 5): on randomized
//! synthetic traces the blame decomposition must always partition each
//! rank's step time, and the critical-path walk must be total, tile the
//! step window, and never exceed the makespan.

use mpas_repro::telemetry::analysis::{
    rank_track, Trace, BARRIER_SPAN, COPY_SPAN, RECV_EVENT, SEND_EVENT, STEP_SPAN, WAIT_SPAN,
};
use mpas_repro::telemetry::{EventRecord, SpanRecord};
use proptest::collection::vec;
use proptest::prelude::*;

fn span(track: String, name: &str, start: f64, dur: f64) -> SpanRecord {
    SpanRecord {
        name: name.to_string(),
        track,
        start_s: start,
        dur_s: dur,
        depth: 0,
    }
}

fn edge(name: &str, ts: f64, from: usize, to: usize, tag: u64) -> EventRecord {
    EventRecord {
        name: name.to_string(),
        ts_s: ts,
        args: vec![
            ("from".to_string(), from.to_string()),
            ("to".to_string(), to.to_string()),
            ("tag".to_string(), tag.to_string()),
            ("bytes".to_string(), "8".to_string()),
        ],
    }
}

/// One step window per rank starting at t=0, plus categorized spans whose
/// position/length are fractions of the owning rank's window.
fn build_spans(
    lens: &[f64],
    waits: &[(usize, f64, f64)],
    copies: &[(usize, f64, f64)],
    barriers: &[(usize, f64, f64)],
) -> Vec<SpanRecord> {
    let n = lens.len();
    let mut spans: Vec<SpanRecord> = lens
        .iter()
        .enumerate()
        .map(|(r, &len)| span(rank_track(r), STEP_SPAN, 0.0, len))
        .collect();
    for (name, items) in [
        (WAIT_SPAN, waits),
        (COPY_SPAN, copies),
        (BARRIER_SPAN, barriers),
    ] {
        for &(r, s, d) in items {
            let r = r % n;
            let t = lens[r];
            spans.push(span(rank_track(r), name, s * t, d * t));
        }
    }
    spans
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blame fractions partition every rank's step time (sum to 1 within
    /// 1e-9), for arbitrary — even overlapping or out-of-window —
    /// wait/copy/barrier spans. And the window obeys
    /// `critical path ≤ makespan ≤ Σ per-rank busy time`.
    #[test]
    fn blame_partitions_and_resource_bounds_hold(
        lens in vec(1.0f64..100.0, 1..5),
        waits in vec((0usize..4, 0.0f64..1.0, 0.0f64..0.6), 0..12),
        copies in vec((0usize..4, 0.0f64..1.0, 0.0f64..0.6), 0..12),
        barriers in vec((0usize..4, 0.0f64..1.3, 0.0f64..0.6), 0..8),
    ) {
        let spans = build_spans(&lens, &waits, &copies, &barriers);
        let t = Trace::from_records(&spans, &[]);
        let blame = t.blame();
        prop_assert_eq!(blame.ranks.len(), lens.len());
        for r in &blame.ranks {
            let sum = r.compute_frac() + r.wait_frac() + r.copy_frac() + r.barrier_frac();
            prop_assert!((sum - 1.0).abs() < 1e-9, "rank {} fractions sum {}", r.rank, sum);
            prop_assert!(r.compute_frac() >= 0.0 && r.wait_frac() >= 0.0);
        }
        // All steps start at 0, so the makespan is the longest rank's busy
        // time — bounded above by the total busy time across ranks.
        let busy: f64 = blame.ranks.iter().map(|r| r.total_s).sum();
        let cp = t.critical_path();
        prop_assert!(cp.path_s() <= cp.makespan_s + 1e-9);
        prop_assert!(cp.makespan_s <= busy + 1e-9);
    }

    /// With arbitrary (even causally nonsensical) message events in the
    /// mix, the critical-path walk stays total: it terminates, its
    /// segments have positive length, tile a suffix of the window
    /// contiguously, stay inside the window, and the per-kind seconds sum
    /// to the path length.
    #[test]
    fn critical_path_is_total_and_tiles_the_window(
        lens in vec(2.0f64..50.0, 2..5),
        waits in vec((0usize..4, 0.0f64..1.0, 0.0f64..0.5), 1..10),
        msgs in vec((0usize..4, 0usize..4, 0.0f64..1.0, 0.0f64..1.0, 0u64..3), 0..12),
    ) {
        let spans = build_spans(&lens, &waits, &[], &[]);
        let n = lens.len();
        let mut events = Vec::new();
        for &(f, to, sf, rf, tag) in &msgs {
            let (f, to) = (f % n, to % n);
            events.push(edge(SEND_EVENT, sf * lens[f], f, to, tag));
            events.push(edge(RECV_EVENT, rf * lens[to], f, to, tag));
        }
        let t = Trace::from_records(&spans, &events);
        let cp = t.critical_path();
        let t1 = lens.iter().cloned().fold(0.0, f64::max);
        prop_assert!((cp.makespan_s - t1).abs() < 1e-9);
        prop_assert!(cp.path_s() <= cp.makespan_s + 1e-9);
        prop_assert!(!cp.segments.is_empty());
        for s in &cp.segments {
            prop_assert!(s.end_s > s.start_s, "empty segment survived");
            prop_assert!(s.start_s >= -1e-9 && s.end_s <= t1 + 1e-9);
        }
        // Contiguous tiling ending at the window end.
        for w in cp.segments.windows(2) {
            prop_assert!((w[0].end_s - w[1].start_s).abs() < 1e-9);
        }
        prop_assert!((cp.segments.last().unwrap().end_s - t1).abs() < 1e-9);
        let bucket_sum = cp.compute_s + cp.wait_s + cp.copy_s + cp.barrier_s;
        prop_assert!((bucket_sum - cp.path_s()).abs() < 1e-9);
    }
}
