//! Cross-crate property tests: invariants that tie the mesh, pattern, and
//! message-passing layers together under randomized inputs.

use mpas_repro::mesh::{build_mesh, IcosaGrid, Mesh, MeshPartition};
use mpas_repro::patterns::reduction::{EdgeCellReduction, LabelMatrix};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn mesh() -> Mesh {
    build_mesh(&IcosaGrid::subdivide(2))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// All three reduction loop forms agree on random edge fields.
    #[test]
    fn reduction_forms_agree_on_random_fields(seed in 0u64..1000) {
        let m = mesh();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let x: Vec<f64> = (0..m.n_edges()).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let mut a = vec![0.0; m.n_cells()];
        let mut b = vec![0.0; m.n_cells()];
        let mut c = vec![0.0; m.n_cells()];
        EdgeCellReduction::scatter(&m, &x, &mut a);
        EdgeCellReduction::gather(&m, &x, &mut b);
        LabelMatrix::build(&m).apply(&x, &mut c);
        for i in 0..m.n_cells() {
            prop_assert!((a[i] - b[i]).abs() < 1e-10);
            prop_assert_eq!(b[i], c[i]);
        }
    }

    /// Any partition (random rank count and halo depth) covers all cells
    /// exactly once and its exchange lists are mutually consistent.
    #[test]
    fn partitions_are_always_well_formed(n_ranks in 1usize..9, halo in 1usize..4) {
        let m = mesh();
        let p = MeshPartition::build(&m, n_ranks, halo);
        let mut owned = vec![0u32; m.n_cells()];
        for r in &p.ranks {
            for &c in &r.cells[..r.n_owned_cells] {
                owned[c as usize] += 1;
            }
            // Send lists reference owned entries; recv lists halo entries.
            for (_, list) in &r.send_cells {
                prop_assert!(list.iter().all(|&l| (l as usize) < r.n_owned_cells));
            }
            for (_, list) in &r.recv_cells {
                prop_assert!(list.iter().all(|&l| (l as usize) >= r.n_owned_cells));
            }
        }
        prop_assert!(owned.iter().all(|&c| c == 1));
    }

    /// Halo exchange delivers exactly the owner's values for arbitrary
    /// rank counts and field contents.
    #[test]
    fn halo_exchange_is_exact(n_ranks in 2usize..6, seed in 0u64..100) {
        use mpas_repro::msg::comm::run_ranks;
        use mpas_repro::msg::halo::{FieldKind, HaloExchanger};
        let m = mesh();
        let p = MeshPartition::build(&m, n_ranks, 2);
        let parts = p.ranks.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let global: Vec<f64> = (0..m.n_cells()).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let global = std::sync::Arc::new(global);
        let ok = run_ranks(n_ranks, |mut ctx| {
            let mut hx = HaloExchanger::new(parts[ctx.rank].clone());
            let mut field: Vec<f64> = hx
                .local()
                .cells
                .iter()
                .enumerate()
                .map(|(l, &g)| {
                    if l < hx.local().n_owned_cells {
                        global[g as usize]
                    } else {
                        f64::NAN
                    }
                })
                .collect();
            hx.exchange(&mut ctx, FieldKind::Cell, &mut field);
            hx.local()
                .cells
                .iter()
                .enumerate()
                .all(|(l, &g)| field[l] == global[g as usize])
        });
        prop_assert!(ok.iter().all(|&b| b));
    }
}

/// Sanity outside proptest: a level-3 mesh validates fully (the expensive
/// antisymmetry check included).
#[test]
fn level3_mesh_validates_in_integration() {
    build_mesh(&IcosaGrid::subdivide(3)).validate();
}
