//! Williamson test case 1: pure advection of a cosine bell by solid-body
//! rotation — the cleanest end-to-end exercise of the thickness patterns
//! (A1, H2) because the analytic solution is known at every instant.

use mpas_repro::swe::{ModelConfig, ShallowWaterModel, TestCase};
use std::sync::Arc;

fn advection_model(level: u32, alpha: f64) -> ShallowWaterModel {
    let mesh = Arc::new(mpas_repro::mesh::generate(level, 0));
    let config = ModelConfig {
        advection_only: true,
        ..Default::default()
    };
    ShallowWaterModel::new(mesh, config, TestCase::Case1 { alpha }, None)
}

#[test]
fn velocity_is_frozen_in_advection_mode() {
    let mut m = advection_model(3, 0.0);
    let u0 = m.state.u.clone();
    m.run_steps(10);
    assert_eq!(m.state.u, u0, "advection mode must not touch the winds");
}

#[test]
fn bell_advects_with_bounded_error_over_a_quarter_revolution() {
    let mut m = advection_model(4, 0.0);
    // 3 days = a quarter revolution.
    let steps = m.steps_for_days(3.0);
    m.run_steps(steps);
    let norms = m.h_error_norms();
    // Centered 2nd-order advection of a C1 bell: Williamson reports l2
    // errors of a few percent for comparable low-order schemes.
    assert!(norms.l2 < 0.05, "l2 = {}", norms.l2);
    // The bell peak must have moved: the initial field is now a bad
    // reference.
    let initial_ref: Vec<f64> = (0..m.mesh.n_cells())
        .map(|i| m.test_case.thickness_at(m.mesh.x_cell[i]))
        .collect();
    let against_initial =
        mpas_repro::swe::ErrorNorms::compute(&m.state.h, &initial_ref, &m.mesh.area_cell);
    // (The 1000 m background dilutes the relative norms, so the contrast
    // factor is modest even for a fully displaced bell.)
    assert!(
        against_initial.l2 > 2.0 * norms.l2,
        "bell did not move: {} vs {}",
        against_initial.l2,
        norms.l2
    );
}

#[test]
fn advection_conserves_tracer_mass_exactly() {
    let mut m = advection_model(3, 0.4);
    let mass0 = m.total_mass();
    m.run_steps(50);
    assert!(((m.total_mass() - mass0) / mass0).abs() < 1e-13);
}

#[test]
fn tilted_advection_also_tracks_the_analytic_bell() {
    // alpha = pi/2 sends the bell over both poles — the classic stress
    // test for polar singularities (our unstructured mesh has none).
    let mut m = advection_model(4, std::f64::consts::FRAC_PI_2);
    let steps = m.steps_for_days(3.0);
    m.run_steps(steps);
    let norms = m.h_error_norms();
    assert!(norms.l2 < 0.05, "over-the-pole l2 = {}", norms.l2);
}

#[test]
fn advection_error_converges_with_resolution() {
    let run = |level: u32| {
        let mut m = advection_model(level, 0.0);
        let steps = m.steps_for_days(1.0);
        m.run_steps(steps);
        m.h_error_norms().l2
    };
    let coarse = run(3);
    let fine = run(4);
    assert!(
        coarse / fine > 1.7,
        "advection not converging: {coarse:.3e} -> {fine:.3e}"
    );
}
