//! Physics-level integration tests: conservation over long horizons and
//! spatial convergence of the steady-state error with resolution — the
//! properties that make the substrate a credible MPAS shallow-water core.

use mpas_repro::swe::{ModelConfig, ShallowWaterModel, TestCase};
use std::sync::Arc;

#[test]
fn mass_conserved_over_hundred_steps() {
    let mesh = Arc::new(mpas_repro::mesh::generate(3, 0));
    let mut m = ShallowWaterModel::new(mesh, ModelConfig::default(), TestCase::Case5, None);
    let m0 = m.total_mass();
    m.run_steps(100);
    assert!(((m.total_mass() - m0) / m0).abs() < 1e-12);
}

#[test]
fn energy_and_enstrophy_drift_slowly() {
    let mesh = Arc::new(mpas_repro::mesh::generate(3, 0));
    let mut m = ShallowWaterModel::new(mesh, ModelConfig::default(), TestCase::Case6, None);
    let e0 = m.total_energy();
    let s0 = m.potential_enstrophy();
    m.run_steps(100);
    let de = ((m.total_energy() - e0) / e0).abs();
    let ds = ((m.potential_enstrophy() - s0) / s0).abs();
    assert!(de < 1e-5, "energy drift {de:e}");
    // APVM upwinding dissipates potential enstrophy by design (it damps
    // grid-scale PV noise), so the bound is looser than for energy.
    assert!(ds < 5e-3, "enstrophy drift {ds:e}");
}

#[test]
fn case2_error_converges_with_resolution() {
    // Halving the mesh spacing should reduce the steady-state l2 error by
    // roughly the scheme's spatial order (between 1st and 2nd on this
    // C-grid with quasi-uniform cells).
    let run = |level: u32| -> f64 {
        let mesh = Arc::new(mpas_repro::mesh::generate(level, 0));
        let mut m = ShallowWaterModel::new(
            mesh,
            ModelConfig::default(),
            TestCase::Case2 { alpha: 0.0 },
            None,
        );
        // Fixed physical horizon: 6 hours.
        let steps = (6.0 * 3600.0 / m.dt).ceil() as usize;
        m.run_steps(steps);
        m.h_error_norms().l2
    };
    let coarse = run(3);
    let fine = run(4);
    let rate = (coarse / fine).log2();
    assert!(
        rate > 0.8,
        "no spatial convergence: l2 {coarse:.3e} -> {fine:.3e} (rate {rate:.2})"
    );
}

#[test]
fn tilted_case2_is_also_steady() {
    // The rotated variant exercises the full Coriolis geometry (no
    // latitude-aligned shortcuts anywhere in the kernels).
    let mesh = Arc::new(mpas_repro::mesh::generate(3, 0));
    let mut m = ShallowWaterModel::new(
        mesh,
        ModelConfig::default(),
        TestCase::Case2 { alpha: 0.7 },
        None,
    );
    m.run_steps(30);
    let norms = m.h_error_norms();
    assert!(norms.l2 < 6e-3, "tilted steady state lost: {norms}");
}

#[test]
fn apvm_upwinding_stabilizes_pv_without_changing_mass() {
    let mesh = Arc::new(mpas_repro::mesh::generate(3, 0));
    let on = ModelConfig {
        apvm_factor: 0.5,
        ..Default::default()
    };
    let off = ModelConfig {
        apvm_factor: 0.0,
        ..Default::default()
    };
    let mut m_on = ShallowWaterModel::new(mesh.clone(), on, TestCase::Case6, None);
    let mut m_off = ShallowWaterModel::new(mesh.clone(), off, TestCase::Case6, None);
    let mass0 = m_on.total_mass();
    m_on.run_steps(30);
    m_off.run_steps(30);
    assert!(((m_on.total_mass() - mass0) / mass0).abs() < 1e-12);
    // The two configurations genuinely differ (the upwinding term fires)...
    assert!(m_on.state.max_abs_diff(&m_off.state) > 0.0);
    // ...but both remain physical.
    for m in [&m_on, &m_off] {
        assert!(m.state.h.iter().all(|&h| h > 1000.0 && h < 12_000.0));
    }
}

#[test]
fn rk4_is_time_reversible_to_truncation_error() {
    // Integrate forward then backward (dt -> -dt): RK4 on a smooth flow
    // returns near the initial state — a strong coupled test of the whole
    // kernel chain's consistency.
    let mesh = Arc::new(mpas_repro::mesh::generate(3, 0));
    let tc = TestCase::Case2 { alpha: 0.0 };
    let mut m = ShallowWaterModel::new(mesh.clone(), ModelConfig::default(), tc, None);
    let initial = m.state.clone();
    let dt = m.dt;
    m.run_steps(5);
    m.dt = -dt;
    m.run_steps(5);
    let h_scale = 5000.0;
    let diff = m.state.max_abs_diff(&initial);
    // Forward-then-backward RK4 is the identity up to O(dt^4) truncation
    // accumulated over 10 steps (~1e-6 relative on this coarse mesh).
    assert!(diff / h_scale < 1e-5, "not reversible: max diff {diff:e}");
}
