//! Paper-scale smoke test: the 120-km mesh (40 962 cells — the paper's
//! Table III smallest entry and the Fig. 5 validation mesh) is generated
//! for real, passes structural validation, runs the model stably, and
//! partitions cleanly. Slower than the other tests (~tens of seconds on
//! one core), but it proves the substrate at the scale the paper used.

use mpas_repro::swe::{ModelConfig, ShallowWaterModel, TestCase};
use std::sync::Arc;

#[test]
fn level6_mesh_generates_validates_and_steps() {
    let mesh = Arc::new(mpas_repro::mesh::generate(6, 0));
    assert_eq!(mesh.n_cells(), 40_962);
    assert_eq!(mesh.n_edges(), 122_880);
    assert_eq!(mesh.n_vertices(), 81_920);
    mesh.validate();

    // Resolution label check: mean cell spacing ~120 km.
    let mean_dc = mesh.dc_edge.iter().sum::<f64>() / mesh.n_edges() as f64 / 1000.0;
    assert!(
        (90.0..150.0).contains(&mean_dc),
        "mean spacing {mean_dc} km (expected ~120)"
    );

    // Three RK4 steps of the Fig. 5 scenario stay physical and conserve
    // mass at machine precision.
    let mut m = ShallowWaterModel::new(mesh.clone(), ModelConfig::default(), TestCase::Case5, None);
    let mass0 = m.total_mass();
    m.run_steps(3);
    assert!(((m.total_mass() - mass0) / mass0).abs() < 1e-13);
    assert!(m.max_courant() < 1.0);
    assert!(m.state.h.iter().all(|&h| h > 3000.0 && h < 7000.0));

    // The paper's 64-process decomposition balances and covers.
    let part = mpas_repro::mesh::MeshPartition::build(&mesh, 64, 1);
    let ideal = mesh.n_cells() as f64 / 64.0;
    for r in &part.ranks {
        let owned = r.n_owned_cells as f64;
        assert!((owned / ideal - 1.0).abs() < 0.05, "imbalance {owned}");
    }
    let cut = part.edge_cut(&mesh);
    assert!(
        (cut as f64) < 0.15 * mesh.n_edges() as f64,
        "edge cut {cut} too large"
    );
}
