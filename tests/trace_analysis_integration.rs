//! PR-5 acceptance test: a level-6 (paper-scale, 40 962-cell) 4-rank
//! distributed run under the trace analyzer. The blame fractions must
//! partition each rank's step time, every recv must match a send, and the
//! measured critical path must agree with the calibrated per-rank serial
//! model within the band documented in DESIGN.md §10 (×12 — the model has
//! no channel/copy overhead and CI hosts share cores across the 4 rank
//! threads, so parity is not expected, only the order of magnitude).

use mpas_repro::core::{run_distributed_recorded, DistributedConfig};
use mpas_repro::patterns::dataflow::MeshCounts;
use mpas_repro::swe::{ModelConfig, TestCase};
use mpas_repro::telemetry::analysis::Trace;
use mpas_repro::telemetry::Recorder;

#[test]
fn level6_four_rank_blame_and_critical_path_agree_with_model() {
    let mesh = mpas_repro::mesh::generate(6, 0);
    let dt = ModelConfig::suggested_dt(&mesh);
    let rec = Recorder::new();
    let n_steps = 3;
    let n_ranks = 4;
    run_distributed_recorded(
        &mesh,
        DistributedConfig {
            n_ranks,
            halo_layers: 3,
            model: ModelConfig::default(),
            test_case: TestCase::Case5,
            dt,
            n_steps,
        },
        &rec,
    );

    let t = Trace::from_recorder(&rec);
    assert_eq!(t.active_ranks(), n_ranks);
    assert_eq!(t.per_step_makespans().len(), n_steps);

    // Blame fractions partition each rank's step time.
    let blame = t.blame();
    assert_eq!(blame.ranks.len(), n_ranks);
    for r in &blame.ranks {
        let sum = r.compute_frac() + r.wait_frac() + r.copy_frac() + r.barrier_frac();
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "rank {} fractions sum {sum}",
            r.rank
        );
        assert!(r.total_s > 0.0);
    }
    assert!(blame.imbalance >= 0.0 && blame.imbalance < 1.0);

    // Every recv pairs with a send (4 substeps/step, eager halo protocol).
    assert_eq!(t.sends.len(), t.recvs.len());
    assert!(!t.sends.is_empty());

    // The critical path is a real multi-rank path through the window.
    let cp = t.critical_path();
    assert!(cp.path_s() > 0.0);
    assert!(cp.path_s() <= cp.makespan_s + 1e-12);
    assert!(
        cp.compute_s > 0.0,
        "a distributed SWE step must have compute on the critical path"
    );

    // Measured step time vs the calibrated per-rank serial model: the
    // DESIGN.md §10 agreement band is one order of magnitude (×12). The
    // minimum over steps is used because shared CI hosts inject load
    // spikes that only ever make steps slower, never faster.
    let measured_step = t
        .per_step_makespans()
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let r = n_ranks as f64;
    let mc_rank = MeshCounts {
        n_cells: mesh.n_cells() as f64 / r,
        n_edges: mesh.n_edges() as f64 / r,
        n_vertices: mesh.n_vertices() as f64 / r,
    };
    let cal = mpas_repro::hybrid::calibrate_host(3, 3);
    let policy = mpas_repro::sched::resolve("serial").expect("serial policy");
    let modeled_step = cal.modeled_time_per_step(
        &mc_rank,
        &mpas_repro::hybrid::Platform::paper_node(),
        policy.as_ref(),
    );
    assert!(modeled_step > 0.0 && modeled_step.is_finite());
    let ratio = (measured_step / modeled_step).max(modeled_step / measured_step);
    eprintln!(
        "measured {measured_step:.4e} s/step, modeled {modeled_step:.4e} s/step (x{ratio:.2})"
    );
    assert!(
        ratio < 12.0,
        "measured {measured_step:.4e} s/step vs modeled {modeled_step:.4e} s/step (x{ratio:.2}) \
         outside the documented x12 band"
    );

    // And the extracted critical path is consistent with the same model:
    // it cannot be shorter than a fraction of the modeled compute time.
    let cp_step = cp.path_s() / n_steps as f64;
    assert!(
        cp_step * 12.0 > modeled_step,
        "critical path {cp_step:.4e} s/step implausibly short vs model {modeled_step:.4e}"
    );
}
