//! Cross-crate telemetry integration tests.
//!
//! The key acceptance property: halo-exchange byte counters recorded by
//! the telemetry subsystem on a partitioned Table-III mesh must equal
//! *exactly* the bytes implied by the partition's send/recv exchange
//! lists, and must sit in the same band as the analytic
//! `halo_bytes_per_substep` estimate the scaling model (Figs. 8-9) uses.

use mpas_repro::core::{halo_probe, Executor, Simulation};
use mpas_repro::hybrid::{self, Platform};
use mpas_repro::mesh::MeshPartition;
use mpas_repro::telemetry::export::validate_json;
use mpas_repro::telemetry::Recorder;

/// Exact halo bytes on a partitioned Table-III mesh (level 6, the paper's
/// 40 962-cell grid): telemetry counters == list-derived bytes, and the
/// analytic √n estimate lands within a small factor of the measurement.
#[test]
fn halo_bytes_counters_match_partition_lists_on_table_iii_mesh() {
    let mesh = mpas_repro::mesh::generate(6, 0);
    assert_eq!(mesh.n_cells(), 40_962, "level 6 is the Table-III mesh");
    let n_ranks = 8;

    // Independent reference: bytes implied by the partition's send lists
    // (packed cell+edge exchange, one direction, 8 bytes per f64).
    let part = MeshPartition::build(&mesh, n_ranks, 3);
    let expected: u64 = part
        .ranks
        .iter()
        .flat_map(|p| p.send_cells.iter().chain(p.send_edges.iter()))
        .map(|(_, list)| (list.len() * 8) as u64)
        .sum();

    let rec = Recorder::new();
    let probed = halo_probe(&mesh, n_ranks, &rec);
    assert_eq!(probed, expected, "probe must report list-derived bytes");

    let snap = rec.snapshot();
    // The recorded counters are EXACTLY the list-derived bytes: every f64
    // that crosses a rank boundary is counted once on send, once on recv.
    assert_eq!(snap.counter("msg.halo.bytes_sent"), Some(expected));
    assert_eq!(snap.counter("msg.halo.bytes_recv"), Some(expected));
    assert_eq!(snap.counter("msg.halo.exchanges"), Some(n_ranks as u64));
    // The transport-level counters agree with the halo-level ones (the
    // probe sends nothing but halo payloads).
    assert_eq!(snap.counter("msg.comm.bytes_sent"), Some(expected));
    assert_eq!(snap.counter("msg.comm.bytes_recv"), Some(expected));
    assert_eq!(
        snap.gauge("msg.halo.exact_bytes_per_substep"),
        Some(expected as f64)
    );

    // Band check against the analytic estimate: the √n ring model is an
    // approximation (it ignores partition shape and the 3-layer rounding),
    // so require agreement within a factor of 3, not equality.
    let modeled = snap
        .gauge("msg.halo.modeled_bytes_per_substep")
        .expect("modeled gauge");
    let analytic = n_ranks as f64
        * hybrid::sim::halo_bytes_per_substep(mesh.n_cells() as f64 / n_ranks as f64);
    assert_eq!(modeled, analytic);
    let ratio = (expected as f64 / modeled).max(modeled / expected as f64);
    assert!(
        ratio < 3.0,
        "measured {expected} B vs modeled {modeled:.0} B (x{ratio:.2})"
    );
}

/// A traced run produces one Chrome trace carrying both the modeled
/// schedule (track group 1) and the measured execution (track group 2),
/// and a metrics snapshot whose JSON serialization is valid.
#[test]
fn combined_trace_and_metrics_snapshot_round_trip() {
    let rec = Recorder::new();
    let mut sim = Simulation::builder()
        .mesh_level(3)
        .executor(Executor::Hybrid {
            cpu_threads: 2,
            acc_threads: 2,
        })
        .recorder(rec.clone())
        .build();
    sim.run_steps(2);
    halo_probe(&sim.mesh, 4, &rec);
    let schedule = sim.modeled_schedule(&Platform::paper_node());

    let trace = hybrid::to_combined_trace(&schedule, &rec);
    validate_json(&trace).expect("combined trace must be valid JSON");
    assert!(
        trace.contains("\"name\":\"modeled\""),
        "modeled track group"
    );
    assert!(
        trace.contains("\"name\":\"measured\""),
        "measured track group"
    );
    assert!(trace.contains("\"pid\":1") && trace.contains("\"pid\":2"));
    assert!(trace.contains("sched.decision"));

    let snap = rec.snapshot();
    let json = snap.to_json();
    validate_json(&json).expect("metrics snapshot must be valid JSON");
    for key in [
        "core.sim.step_seconds",
        "core.sim.mass_drift",
        "hybrid.kernel.B1.seconds",
        "hybrid.split.B1.cpu.seconds",
        "hybrid.split.B1.acc.seconds",
        "msg.halo.bytes_sent",
        "sched.makespan_seconds",
    ] {
        assert!(json.contains(key), "{key} missing from metrics JSON");
    }
    // CSV form carries one row per metric.
    let csv = snap.to_csv();
    let rows = csv.lines().count();
    assert_eq!(
        rows,
        1 + snap.counters.len() + snap.gauges.len() + snap.histograms.len()
    );
}

/// Telemetry must never perturb results: a recorded hybrid run stays
/// bit-for-bit identical to an unrecorded serial run.
#[test]
fn recorded_run_matches_unrecorded_bitwise() {
    let mesh = std::sync::Arc::new(mpas_repro::mesh::generate(3, 0));
    let mut recorded = Simulation::builder()
        .mesh(mesh.clone())
        .executor(Executor::Hybrid {
            cpu_threads: 2,
            acc_threads: 1,
        })
        .recorder(Recorder::new())
        .build();
    let mut plain = Simulation::builder().mesh(mesh).build();
    recorded.run_steps(3);
    plain.run_steps(3);
    assert_eq!(recorded.state().max_abs_diff(plain.state()), 0.0);
}
