//! The paper's §V.A correctness validation (Fig. 5), strengthened: every
//! executor — serial reference, threaded, two-pool hybrid, and multi-rank
//! distributed — must produce the *same bits* for the same simulation.
//! (The paper accepts "within machine precision" because OpenMP reordering
//! perturbs rounding; our executors preserve per-point arithmetic order, so
//! exact equality is achievable and asserted.)

use mpas_repro::core::{run_distributed, DistributedConfig};
use mpas_repro::hybrid::{HybridModel, ParallelModel, Platform};
use mpas_repro::swe::{ModelConfig, ShallowWaterModel, TestCase};
use std::sync::Arc;

fn all_test_cases() -> Vec<TestCase> {
    vec![
        TestCase::Case2 { alpha: 0.0 },
        TestCase::Case2 { alpha: 0.5 },
        TestCase::Case5,
        TestCase::Case6,
    ]
}

#[test]
fn fig5_all_executors_agree_on_every_test_case() {
    let mesh = Arc::new(mpas_repro::mesh::generate(3, 0));
    let cfg = ModelConfig::default();
    let dt = ModelConfig::suggested_dt(&mesh);
    for tc in all_test_cases() {
        let mut serial = ShallowWaterModel::new(mesh.clone(), cfg, tc, Some(dt));
        let mut threaded = ParallelModel::new(mesh.clone(), cfg, tc, Some(dt), 3);
        let mut hybrid = HybridModel::new(
            mesh.clone(),
            cfg,
            tc,
            Some(dt),
            2,
            2,
            &Platform::paper_node(),
        );
        serial.run_steps(3);
        threaded.run_steps(3);
        hybrid.run_steps(3);
        let dist = run_distributed(
            &mesh,
            DistributedConfig {
                n_ranks: 3,
                halo_layers: 3,
                model: cfg,
                test_case: tc,
                dt,
                n_steps: 3,
            },
        );
        assert_eq!(
            serial.state.max_abs_diff(&threaded.state),
            0.0,
            "{tc:?}: threaded diverged"
        );
        assert_eq!(
            serial.state.max_abs_diff(hybrid.state()),
            0.0,
            "{tc:?}: hybrid diverged"
        );
        assert_eq!(
            serial.state.max_abs_diff(&dist),
            0.0,
            "{tc:?}: distributed diverged"
        );
    }
}

#[test]
fn fig5_total_height_stays_in_band_under_mountain_flow() {
    // The Fig. 5 color scale spans roughly 5050-5950 m at day 15; a short
    // run must stay within the same physical band.
    let mesh = Arc::new(mpas_repro::mesh::generate(4, 0));
    let mut m = ShallowWaterModel::new(mesh.clone(), ModelConfig::default(), TestCase::Case5, None);
    m.run_steps(m.steps_for_days(0.5));
    let th = m.total_height();
    let min = th.iter().cloned().fold(f64::MAX, f64::min);
    let max = th.iter().cloned().fold(f64::MIN, f64::max);
    assert!(min > 4900.0 && max < 6050.0, "h+b range [{min}, {max}]");
    assert!(m.state.u.iter().all(|u| u.abs() < 150.0), "wind blow-up");
}

#[test]
fn high_order_h_edge_configuration_also_agrees_across_executors() {
    let mesh = Arc::new(mpas_repro::mesh::generate(3, 0));
    let cfg = ModelConfig {
        high_order_h_edge: true,
        ..Default::default()
    };
    let tc = TestCase::Case5;
    let mut serial = ShallowWaterModel::new(mesh.clone(), cfg, tc, None);
    let mut threaded = ParallelModel::new(mesh.clone(), cfg, tc, None, 2);
    serial.run_steps(2);
    threaded.run_steps(2);
    assert_eq!(serial.state.max_abs_diff(&threaded.state), 0.0);
}

#[test]
fn del2_dissipation_configuration_agrees_and_damps() {
    let mesh = Arc::new(mpas_repro::mesh::generate(3, 0));
    let cfg = ModelConfig {
        del2_viscosity: 1.0e5,
        ..Default::default()
    };
    let tc = TestCase::Case6;
    let mut with_nu = ShallowWaterModel::new(mesh.clone(), cfg, tc, None);
    let mut without = ShallowWaterModel::new(mesh.clone(), ModelConfig::default(), tc, None);
    let mut threaded = ParallelModel::new(mesh.clone(), cfg, tc, None, 2);
    with_nu.run_steps(10);
    without.run_steps(10);
    threaded.run_steps(10);
    assert_eq!(with_nu.state.max_abs_diff(&threaded.state), 0.0);
    // Dissipation must reduce kinetic energy relative to the inviscid run.
    let ke = |m: &ShallowWaterModel| -> f64 { m.diag.ke.iter().sum() };
    assert!(ke(&with_nu) < ke(&without), "del2 did not dissipate");
}
