//! Biharmonic (del4) hyperviscosity: scale selectivity and executor
//! equivalence.

use mpas_repro::hybrid::ParallelModel;
use mpas_repro::swe::kernels::{compute_solve_diagnostics, compute_tend, ops};
use mpas_repro::swe::{Diagnostics, ModelConfig, ShallowWaterModel, Tendencies, TestCase};
use std::sync::Arc;

#[test]
fn del4_damps_grid_noise_more_selectively_than_del2() {
    // Superpose a smooth flow with checkerboard noise; del4 must remove a
    // larger *fraction* of the noise tendency relative to the smooth
    // tendency than del2 does (scale selectivity).
    let mesh = mpas_mesh::generate(3, 0);
    let smooth: Vec<f64> = (0..mesh.n_edges())
        .map(|e| {
            mpas_geom::Vec3::Z
                .cross(mesh.x_edge[e])
                .dot(mesh.normal_edge[e])
                * 10.0
        })
        .collect();
    let noise: Vec<f64> = (0..mesh.n_edges())
        .map(|e| if e % 2 == 0 { 1.0 } else { -1.0 })
        .collect();

    // Magnitude of each operator's response to each field.
    let respond = |u: &[f64], del2: f64, del4: f64| -> f64 {
        let mut div = vec![0.0; mesh.n_cells()];
        let mut vort = vec![0.0; mesh.n_vertices()];
        ops::divergence(&mesh, u, &mut div, 0..mesh.n_cells());
        ops::vorticity(&mesh, u, &mut vort, 0..mesh.n_vertices());
        let mut out = vec![0.0; mesh.n_edges()];
        if del2 != 0.0 {
            ops::tend_u_del2(&mesh, del2, &div, &vort, &mut out, 0..mesh.n_edges());
        }
        if del4 != 0.0 {
            let mut lap = vec![0.0; mesh.n_edges()];
            ops::lap_u(&mesh, &div, &vort, &mut lap, 0..mesh.n_edges());
            let mut div2 = vec![0.0; mesh.n_cells()];
            let mut vort2 = vec![0.0; mesh.n_vertices()];
            ops::divergence(&mesh, &lap, &mut div2, 0..mesh.n_cells());
            ops::vorticity(&mesh, &lap, &mut vort2, 0..mesh.n_vertices());
            ops::tend_u_del4(&mesh, del4, &div2, &vort2, &mut out, 0..mesh.n_edges());
        }
        (out.iter().map(|x| x * x).sum::<f64>() / out.len() as f64).sqrt()
    };

    let nu2 = 1.0e5;
    let nu4 = 1.0e15;
    let selectivity_del2 = respond(&noise, nu2, 0.0) / respond(&smooth, nu2, 0.0);
    let selectivity_del4 = respond(&noise, 0.0, nu4) / respond(&smooth, 0.0, nu4);
    assert!(
        selectivity_del4 > 5.0 * selectivity_del2,
        "del4 not scale-selective: {selectivity_del4} vs {selectivity_del2}"
    );
}

#[test]
fn del4_dissipates_noise_energy() {
    let mesh = mpas_mesh::generate(3, 0);
    let config = ModelConfig {
        del4_viscosity: 1.0e15,
        ..Default::default()
    };
    let h = vec![5000.0; mesh.n_cells()];
    let u: Vec<f64> = (0..mesh.n_edges())
        .map(|e| if e % 2 == 0 { 0.5 } else { -0.5 })
        .collect();
    let b = vec![0.0; mesh.n_cells()];
    let f_v = vec![0.0; mesh.n_vertices()];
    let mut diag = Diagnostics::zeros(&mesh);
    compute_solve_diagnostics(&mesh, &config, &h, &u, &f_v, 60.0, &mut diag);
    let mut tend = Tendencies::zeros(&mesh);
    compute_tend(&mesh, &config, &h, &u, &b, &diag, &mut tend);
    // The del4 term must push u toward zero: u · tend_u < 0 overall.
    let power: f64 = (0..mesh.n_edges())
        .map(|e| u[e] * tend.tend_u[e] * mesh.dc_edge[e] * mesh.dv_edge[e])
        .sum();
    assert!(power < 0.0, "del4 added energy: {power}");
}

#[test]
fn del4_configuration_matches_across_executors() {
    let mesh = Arc::new(mpas_mesh::generate(3, 0));
    let cfg = ModelConfig {
        del4_viscosity: 5.0e14,
        ..Default::default()
    };
    let tc = TestCase::Case6;
    let mut serial = ShallowWaterModel::new(mesh.clone(), cfg, tc, None);
    let mut threaded = ParallelModel::new(mesh, cfg, tc, None, 3);
    serial.run_steps(5);
    threaded.run_steps(5);
    assert_eq!(serial.state.max_abs_diff(&threaded.state), 0.0);
    // And the term actually fired (different from the inviscid run).
    assert!(serial.state.h.iter().all(|h| h.is_finite()));
}

#[test]
fn del4_preserves_mass_exactly() {
    let mesh = Arc::new(mpas_mesh::generate(3, 0));
    let cfg = ModelConfig {
        del4_viscosity: 5.0e14,
        ..Default::default()
    };
    let mut m = ShallowWaterModel::new(mesh, cfg, TestCase::Case5, None);
    let m0 = m.total_mass();
    m.run_steps(20);
    assert!(((m.total_mass() - m0) / m0).abs() < 1e-13);
}
